package lp

import (
	"math"
	"math/rand"
	"testing"

	"gddr/internal/graph"
	"gddr/internal/traffic"
)

// perCommodityOptimal solves the textbook per-commodity multicommodity-flow
// LP (one flow variable per (source, destination) pair and edge — the
// formulation written out in the paper's §II-A) as a cross-check for the
// destination-aggregated formulation used by OptimalMaxUtilization.
func perCommodityOptimal(t *testing.T, g *graph.Graph, dm *traffic.DemandMatrix) float64 {
	t.Helper()
	n := g.NumNodes()
	ne := g.NumEdges()
	type commodity struct {
		s, t   int
		demand float64
	}
	var commodities []commodity
	for s := 0; s < n; s++ {
		for dst := 0; dst < n; dst++ {
			if d := dm.At(s, dst); d > 0 {
				commodities = append(commodities, commodity{s: s, t: dst, demand: d})
			}
		}
	}
	k := len(commodities)
	// Variables: f_i(e) at i*ne+e, then U_max.
	numVars := k*ne + 1
	uMaxVar := k * ne
	p := NewProblem(numVars)
	if err := p.SetObjectiveCoeff(uMaxVar, 1); err != nil {
		t.Fatal(err)
	}
	for i, c := range commodities {
		for v := 0; v < n; v++ {
			if v == c.t {
				continue
			}
			var terms []Term
			for _, ei := range g.OutEdges(v) {
				terms = append(terms, Term{Var: i*ne + ei, Coeff: 1})
			}
			for _, ei := range g.InEdges(v) {
				terms = append(terms, Term{Var: i*ne + ei, Coeff: -1})
			}
			rhs := 0.0
			if v == c.s {
				rhs = c.demand
			}
			if err := p.AddConstraint(terms, EQ, rhs); err != nil {
				t.Fatal(err)
			}
		}
	}
	for e := 0; e < ne; e++ {
		terms := make([]Term, 0, k+1)
		for i := 0; i < k; i++ {
			terms = append(terms, Term{Var: i*ne + e, Coeff: 1})
		}
		terms = append(terms, Term{Var: uMaxVar, Coeff: -g.Edge(e).Capacity})
		if err := p.AddConstraint(terms, LE, 0); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("per-commodity LP: %v", err)
	}
	return sol.X[uMaxVar]
}

// TestDestinationAggregationEquivalence: the destination-aggregated MCF must
// produce exactly the same optimal U_max as the per-commodity formulation
// (a standard result for fractional min-max-utilisation routing; DESIGN.md
// substitution #1 relies on it).
func TestDestinationAggregationEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		g, err := graph.RandomConnected(4+rng.Intn(3), 3, 5, 20, rng)
		if err != nil {
			t.Fatal(err)
		}
		dm := traffic.Sparsify(traffic.Bimodal(g.NumNodes(), traffic.BimodalParams{
			LowMean: 3, LowStd: 1, HighMean: 9, HighStd: 1, ElephantProb: 0.3,
		}, rng), 0.5, rng)
		if dm.Total() == 0 {
			continue
		}
		aggregated, _, err := OptimalMaxUtilization(g, dm)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		perCommodity := perCommodityOptimal(t, g, dm)
		if math.Abs(aggregated-perCommodity) > 1e-5*(1+perCommodity) {
			t.Fatalf("trial %d: aggregated %g != per-commodity %g", trial, aggregated, perCommodity)
		}
	}
}

// TestMCFScalesLinearly: scaling every demand by f scales U_max by f (LP
// homogeneity), a cheap but sharp property of the solver pipeline.
func TestMCFScalesLinearly(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	g, err := graph.RandomConnected(7, 3, 10, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	dm := traffic.Bimodal(7, traffic.BimodalParams{
		LowMean: 4, LowStd: 1, HighMean: 10, HighStd: 1, ElephantProb: 0.2,
	}, rng)
	u1, _, err := OptimalMaxUtilization(g, dm)
	if err != nil {
		t.Fatal(err)
	}
	u3, _, err := OptimalMaxUtilization(g, dm.Clone().Scale(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u3-3*u1) > 1e-5*(1+u3) {
		t.Fatalf("homogeneity violated: U(3D)=%g, 3U(D)=%g", u3, 3*u1)
	}
}

// TestMCFMonotoneInCapacity: increasing a capacity can only reduce U_max.
func TestMCFMonotoneInCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	g, err := graph.RandomConnected(6, 3, 5, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	dm := traffic.Bimodal(6, traffic.BimodalParams{
		LowMean: 4, LowStd: 1, HighMean: 10, HighStd: 1, ElephantProb: 0.2,
	}, rng)
	before, _, err := OptimalMaxUtilization(g, dm)
	if err != nil {
		t.Fatal(err)
	}
	boosted := g.Clone()
	for ei := 0; ei < boosted.NumEdges(); ei++ {
		if err := boosted.SetCapacity(ei, boosted.Edge(ei).Capacity*2); err != nil {
			t.Fatal(err)
		}
	}
	after, _, err := OptimalMaxUtilization(boosted, dm)
	if err != nil {
		t.Fatal(err)
	}
	if after > before+1e-9 {
		t.Fatalf("doubling capacities increased U_max: %g -> %g", before, after)
	}
	if math.Abs(after-before/2) > 1e-5*(1+before) {
		t.Fatalf("doubling all capacities should halve U_max: %g -> %g", before, after)
	}
}
