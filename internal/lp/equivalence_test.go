package lp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"gddr/internal/graph"
	"gddr/internal/topo"
	"gddr/internal/traffic"
)

// perCommodityOptimal solves the textbook per-commodity multicommodity-flow
// LP (one flow variable per (source, destination) pair and edge — the
// formulation written out in the paper's §II-A) as a cross-check for the
// destination-aggregated formulation used by OptimalMaxUtilization.
func perCommodityOptimal(t *testing.T, g *graph.Graph, dm *traffic.DemandMatrix) float64 {
	t.Helper()
	n := g.NumNodes()
	ne := g.NumEdges()
	type commodity struct {
		s, t   int
		demand float64
	}
	var commodities []commodity
	for s := 0; s < n; s++ {
		for dst := 0; dst < n; dst++ {
			if d := dm.At(s, dst); d > 0 {
				commodities = append(commodities, commodity{s: s, t: dst, demand: d})
			}
		}
	}
	k := len(commodities)
	// Variables: f_i(e) at i*ne+e, then U_max.
	numVars := k*ne + 1
	uMaxVar := k * ne
	p := NewProblem(numVars)
	if err := p.SetObjectiveCoeff(uMaxVar, 1); err != nil {
		t.Fatal(err)
	}
	for i, c := range commodities {
		for v := 0; v < n; v++ {
			if v == c.t {
				continue
			}
			var terms []Term
			for _, ei := range g.OutEdges(v) {
				terms = append(terms, Term{Var: i*ne + ei, Coeff: 1})
			}
			for _, ei := range g.InEdges(v) {
				terms = append(terms, Term{Var: i*ne + ei, Coeff: -1})
			}
			rhs := 0.0
			if v == c.s {
				rhs = c.demand
			}
			if err := p.AddConstraint(terms, EQ, rhs); err != nil {
				t.Fatal(err)
			}
		}
	}
	for e := 0; e < ne; e++ {
		terms := make([]Term, 0, k+1)
		for i := 0; i < k; i++ {
			terms = append(terms, Term{Var: i*ne + e, Coeff: 1})
		}
		terms = append(terms, Term{Var: uMaxVar, Coeff: -g.Edge(e).Capacity})
		if err := p.AddConstraint(terms, LE, 0); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("per-commodity LP: %v", err)
	}
	return sol.X[uMaxVar]
}

// TestDestinationAggregationEquivalence: the destination-aggregated MCF must
// produce exactly the same optimal U_max as the per-commodity formulation
// (a standard result for fractional min-max-utilisation routing; DESIGN.md
// substitution #1 relies on it).
func TestDestinationAggregationEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		g, err := graph.RandomConnected(4+rng.Intn(3), 3, 5, 20, rng)
		if err != nil {
			t.Fatal(err)
		}
		dm := traffic.Sparsify(traffic.Bimodal(g.NumNodes(), traffic.BimodalParams{
			LowMean: 3, LowStd: 1, HighMean: 9, HighStd: 1, ElephantProb: 0.3,
		}, rng), 0.5, rng)
		if dm.Total() == 0 {
			continue
		}
		aggregated, _, err := OptimalMaxUtilization(g, dm)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		perCommodity := perCommodityOptimal(t, g, dm)
		if math.Abs(aggregated-perCommodity) > 1e-5*(1+perCommodity) {
			t.Fatalf("trial %d: aggregated %g != per-commodity %g", trial, aggregated, perCommodity)
		}
	}
}

// TestMCFScalesLinearly: scaling every demand by f scales U_max by f (LP
// homogeneity), a cheap but sharp property of the solver pipeline.
func TestMCFScalesLinearly(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	g, err := graph.RandomConnected(7, 3, 10, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	dm := traffic.Bimodal(7, traffic.BimodalParams{
		LowMean: 4, LowStd: 1, HighMean: 10, HighStd: 1, ElephantProb: 0.2,
	}, rng)
	u1, _, err := OptimalMaxUtilization(g, dm)
	if err != nil {
		t.Fatal(err)
	}
	u3, _, err := OptimalMaxUtilization(g, dm.Clone().Scale(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u3-3*u1) > 1e-5*(1+u3) {
		t.Fatalf("homogeneity violated: U(3D)=%g, 3U(D)=%g", u3, 3*u1)
	}
}

// TestMCFMonotoneInCapacity: increasing a capacity can only reduce U_max.
func TestMCFMonotoneInCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	g, err := graph.RandomConnected(6, 3, 5, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	dm := traffic.Bimodal(6, traffic.BimodalParams{
		LowMean: 4, LowStd: 1, HighMean: 10, HighStd: 1, ElephantProb: 0.2,
	}, rng)
	before, _, err := OptimalMaxUtilization(g, dm)
	if err != nil {
		t.Fatal(err)
	}
	boosted := g.Clone()
	for ei := 0; ei < boosted.NumEdges(); ei++ {
		if err := boosted.SetCapacity(ei, boosted.Edge(ei).Capacity*2); err != nil {
			t.Fatal(err)
		}
	}
	after, _, err := OptimalMaxUtilization(boosted, dm)
	if err != nil {
		t.Fatal(err)
	}
	if after > before+1e-9 {
		t.Fatalf("doubling capacities increased U_max: %g -> %g", before, after)
	}
	if math.Abs(after-before/2) > 1e-5*(1+before) {
		t.Fatalf("doubling all capacities should halve U_max: %g -> %g", before, after)
	}
}

// perturbDemands returns a copy of dm with every positive entry scaled by a
// random factor near 1. The sparsity pattern — and therefore the MCF row
// structure the warm-start hash guards — is preserved exactly.
func perturbDemands(dm *traffic.DemandMatrix, rng *rand.Rand) *traffic.DemandMatrix {
	out := dm.Clone()
	for i, v := range out.Data {
		if v > 0 {
			out.Data[i] = v * (0.9 + 0.2*rng.Float64())
		}
	}
	return out
}

// buildMaxUtilProblem mirrors OptimalMaxUtilizationCtx's LP construction so
// tests can run the dense-tableau oracle on the identical problem.
func buildMaxUtilProblem(t *testing.T, g *graph.Graph, dm *traffic.DemandMatrix) *Problem {
	t.Helper()
	n, ne := g.NumNodes(), g.NumEdges()
	p := NewProblem(n*ne + 1)
	uMaxVar := n * ne
	if err := p.SetObjectiveCoeff(uMaxVar, 1); err != nil {
		t.Fatal(err)
	}
	if err := addConservationRows(p, g, dm); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < ne; e++ {
		terms := make([]Term, 0, n+1)
		for tt := 0; tt < n; tt++ {
			terms = append(terms, Term{Var: tt*ne + e, Coeff: 1})
		}
		terms = append(terms, Term{Var: uMaxVar, Coeff: -g.Edge(e).Capacity})
		if err := p.AddConstraint(terms, LE, 0); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// TestRevisedMatchesDenseOracleOnTopologies cross-checks the revised simplex
// (cold and warm-chained) against the dense tableau oracle on MCF instances
// over all four embedded topologies, with demand sequences whose structure
// is fixed but whose magnitudes drift step to step.
func TestRevisedMatchesDenseOracleOnTopologies(t *testing.T) {
	for _, name := range topo.Names() {
		t.Run(name, func(t *testing.T) {
			g, err := topo.Named(name)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			base := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
			const steps = 4
			var warm *Basis
			warmHits := 0
			for step := 0; step < steps; step++ {
				dm := perturbDemands(base, rng)

				u, flows, stats, err := OptimalMaxUtilizationCtx(context.Background(), g, dm, warm)
				if err != nil {
					t.Fatalf("step %d revised: %v", step, err)
				}
				if stats.Basis == nil {
					t.Fatalf("step %d: revised solve returned nil basis", step)
				}
				if stats.WarmStarted {
					warmHits++
				}
				warm = stats.Basis

				dense, err := buildMaxUtilProblem(t, g, dm).SolveDense()
				if err != nil {
					t.Fatalf("step %d dense oracle: %v", step, err)
				}
				tol := 1e-9 * (1 + math.Abs(dense.Objective))
				if math.Abs(u-dense.Objective) > tol {
					t.Fatalf("step %d: revised U=%.15g dense U=%.15g (diff %g > tol %g, warm=%v)",
						step, u, dense.Objective, math.Abs(u-dense.Objective), tol, stats.WarmStarted)
				}
				if err := VerifyFlowConservation(g, dm, flows, 1e-6); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
			if warmHits == 0 {
				t.Fatalf("no solve in the chain warm-started (expected steps 1..%d to reuse the basis)", steps-1)
			}
		})
	}
}

// TestRevisedMeanUtilMatchesDense does the same cross-check for the
// mean-utilisation objective, whose cost vector is dense over all flow
// variables (a different pricing profile from min-max).
func TestRevisedMeanUtilMatchesDense(t *testing.T) {
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(7))
	base := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	var warm *Basis
	for step := 0; step < 3; step++ {
		dm := perturbDemands(base, rng)
		u, flows, stats, err := OptimalMeanUtilizationCtx(context.Background(), g, dm, warm)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		warm = stats.Basis

		n, ne := g.NumNodes(), g.NumEdges()
		p := NewProblem(n * ne)
		for tt := 0; tt < n; tt++ {
			for e := 0; e < ne; e++ {
				if err := p.SetObjectiveCoeff(tt*ne+e, 1/(g.Edge(e).Capacity*float64(ne))); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := addConservationRows(p, g, dm); err != nil {
			t.Fatal(err)
		}
		dense, err := p.SolveDense()
		if err != nil {
			t.Fatalf("step %d dense: %v", step, err)
		}
		tol := 1e-9 * (1 + math.Abs(dense.Objective))
		if math.Abs(u-dense.Objective) > tol {
			t.Fatalf("step %d: revised %.15g dense %.15g (warm=%v)", step, u, dense.Objective, stats.WarmStarted)
		}
		if err := VerifyFlowConservation(g, dm, flows, 1e-6); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestWarmStartStructureMismatchFallsBackCold removes every demand toward
// one destination between solves, which deletes that destination's
// conservation rows; the structural hash must reject the stale basis and
// the solve must fall back to a cold start (and still be correct).
func TestWarmStartStructureMismatchFallsBackCold(t *testing.T) {
	g := topo.B4()
	rng := rand.New(rand.NewSource(3))
	dm1 := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	dm2 := dm1.Clone()
	for v := 0; v < dm2.N; v++ {
		dm2.Set(v, 0, 0) // destination 0 loses its conservation rows
	}
	if dm1.Equal(dm2) {
		t.Fatal("destination 0 had no demand; pick another seed")
	}

	_, _, stats1, err := OptimalMaxUtilizationCtx(context.Background(), g, dm1, nil)
	if err != nil {
		t.Fatal(err)
	}
	u2, _, stats2, err := OptimalMaxUtilizationCtx(context.Background(), g, dm2, stats1.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.WarmStarted {
		t.Fatal("warm start accepted a basis from a structurally different problem")
	}
	dense, err := buildMaxUtilProblem(t, g, dm2).SolveDense()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u2-dense.Objective) > 1e-9*(1+math.Abs(dense.Objective)) {
		t.Fatalf("cold fallback wrong: %g vs dense %g", u2, dense.Objective)
	}
}

// TestRevisedAntiCyclingDegenerate is a regression for cycling under heavy
// degeneracy: Beale's classic example cycles forever under pure Dantzig
// pricing. The Dantzig→Bland switch must still terminate at the optimum.
func TestRevisedAntiCyclingDegenerate(t *testing.T) {
	// min -0.75x1 + 150x2 - 0.02x3 + 6x4
	// s.t. 0.25x1 - 60x2 - 0.04x3 + 9x4 <= 0
	//      0.5x1 - 90x2 - 0.02x3 + 3x4 <= 0
	//      x3 <= 1
	p := NewProblem(4)
	for v, c := range []float64{-0.75, 150, -0.02, 6} {
		if err := p.SetObjectiveCoeff(v, c); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd := func(terms []Term, s Sense, rhs float64) {
		t.Helper()
		if err := p.AddConstraint(terms, s, rhs); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd([]Term{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	mustAdd([]Term{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	mustAdd([]Term{{2, 1}}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("revised simplex failed on Beale's cycling LP: %v", err)
	}
	if math.Abs(sol.Objective-(-0.05)) > 1e-9 {
		t.Fatalf("objective %.12g, want -0.05", sol.Objective)
	}
}

// TestSolveCancelledContext is the regression for the satellite bugfix: an
// already-cancelled context must abort the solve promptly — the check lives
// inside the pivot loop, not only between solves — even on a large instance.
func TestSolveCancelledContext(t *testing.T) {
	g := topo.Geant()
	rng := rand.New(rand.NewSource(5))
	dm := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := OptimalMaxUtilizationCtx(ctx, g, dm, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled in chain, got %v", err)
	}
}

// TestWarmStartPivotSavings asserts the point of the warm path: re-solving a
// slightly perturbed demand matrix from the previous basis must take far
// fewer pivots than solving cold.
func TestWarmStartPivotSavings(t *testing.T) {
	g := topo.NSFNet()
	rng := rand.New(rand.NewSource(9))
	base := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	_, _, stats0, err := OptimalMaxUtilizationCtx(context.Background(), g, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	dm := perturbDemands(base, rng)
	_, _, cold, err := OptimalMaxUtilizationCtx(context.Background(), g, dm, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, warmS, err := OptimalMaxUtilizationCtx(context.Background(), g, dm, stats0.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if !warmS.WarmStarted {
		t.Fatal("warm start rejected despite identical structure")
	}
	if warmS.Pivots*2 >= cold.Pivots {
		t.Fatalf("warm start saved too little: %d pivots warm vs %d cold", warmS.Pivots, cold.Pivots)
	}
}

// BenchmarkLPWarmStart measures a full MCF re-solve of a perturbed demand
// matrix, cold versus warm-started from the previous optimum's basis. CI
// gates the warm/cold ratio (see .github/workflows/ci.yml).
func BenchmarkLPWarmStart(b *testing.B) {
	g := topo.Geant()
	rng := rand.New(rand.NewSource(13))
	base := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	_, _, stats, err := OptimalMaxUtilizationCtx(context.Background(), g, base, nil)
	if err != nil {
		b.Fatal(err)
	}
	dm := perturbDemands(base, rng)

	b.Run("start=cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := OptimalMaxUtilizationCtx(context.Background(), g, dm, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("start=warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _, s, err := OptimalMaxUtilizationCtx(context.Background(), g, dm, stats.Basis)
			if err != nil {
				b.Fatal(err)
			}
			if !s.WarmStarted {
				b.Fatal("warm start rejected")
			}
		}
	})
}
