package lp

import (
	"math"
	"math/rand"
	"testing"

	"gddr/internal/graph"
	"gddr/internal/topo"
	"gddr/internal/traffic"
)

func singleDemand(n, s, t int, d float64) *traffic.DemandMatrix {
	dm := traffic.NewDemandMatrix(n)
	dm.Set(s, t, d)
	return dm
}

func TestMCFTwoDisjointPaths(t *testing.T) {
	// 0→1→3 and 0→2→3, all capacities 10, demand 0→3 of 10.
	// Optimal splits 5/5: U_max = 0.5.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 3, 10)
	g.MustAddEdge(0, 2, 10)
	g.MustAddEdge(2, 3, 10)
	u, flows, err := OptimalMaxUtilization(g, singleDemand(4, 0, 3, 10))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.5) > 1e-6 {
		t.Fatalf("U_max=%g want 0.5", u)
	}
	if err := VerifyFlowConservation(g, singleDemand(4, 0, 3, 10), flows, 1e-6); err != nil {
		t.Fatal(err)
	}
	if got := MaxUtilizationOfFlows(g, flows); math.Abs(got-u) > 1e-6 {
		t.Fatalf("recomputed U=%g vs LP %g", got, u)
	}
}

func TestMCFUnequalCapacities(t *testing.T) {
	// Two disjoint paths with bottlenecks 10 and 30; demand 20.
	// Optimal U: split x on path A (cap 10), 20-x on B (cap 30):
	// minimise max(x/10, (20-x)/30) => x/10=(20-x)/30 => x=5, U=0.5.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 3, 10)
	g.MustAddEdge(0, 2, 30)
	g.MustAddEdge(2, 3, 30)
	u, _, err := OptimalMaxUtilization(g, singleDemand(4, 0, 3, 20))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.5) > 1e-6 {
		t.Fatalf("U_max=%g want 0.5", u)
	}
}

func TestMCFSingleLink(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 4)
	g.MustAddEdge(1, 0, 4)
	u, _, err := OptimalMaxUtilization(g, singleDemand(2, 0, 1, 6))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-1.5) > 1e-6 {
		t.Fatalf("U_max=%g want 1.5 (over-subscribed link)", u)
	}
}

func TestMCFZeroDemand(t *testing.T) {
	g, err := graph.Ring(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	u, _, err := OptimalMaxUtilization(g, traffic.NewDemandMatrix(4))
	if err != nil {
		t.Fatal(err)
	}
	if u > 1e-9 {
		t.Fatalf("U_max=%g want 0 for zero demand", u)
	}
}

func TestMCFMultipleCommoditiesShareLink(t *testing.T) {
	// Line 0-1-2 (caps 10). Demands 0→2: 5 and 1→2: 5 share edge 1→2:
	// U = 10/10 = 1, edge 0→1 carries 5 → 0.5.
	g := graph.New(3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 2, 10)
	dm := traffic.NewDemandMatrix(3)
	dm.Set(0, 2, 5)
	dm.Set(1, 2, 5)
	u, flows, err := OptimalMaxUtilization(g, dm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-1.0) > 1e-6 {
		t.Fatalf("U_max=%g want 1.0", u)
	}
	if err := VerifyFlowConservation(g, dm, flows, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestMCFRingSplitsBothWays(t *testing.T) {
	// On a symmetric ring, a single demand can split clockwise and
	// counter-clockwise; a 4-ring from 0 to 2 has two 2-hop paths,
	// so optimal halves the flow: U = d/2 / cap.
	g, err := graph.Ring(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	u, _, err := OptimalMaxUtilization(g, singleDemand(4, 0, 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.5) > 1e-6 {
		t.Fatalf("U_max=%g want 0.5", u)
	}
}

func TestMCFOptimalIsLowerBoundForRandomInstances(t *testing.T) {
	// The LP optimum must never exceed the utilisation of any specific
	// feasible routing; compare against direct single-shortest-path loads.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		g, err := graph.RandomConnected(6+rng.Intn(4), 3, 5, 15, rng)
		if err != nil {
			t.Fatal(err)
		}
		dm := traffic.Bimodal(g.NumNodes(), traffic.BimodalParams{
			LowMean: 1, LowStd: 0.2, HighMean: 3, HighStd: 0.3, ElephantProb: 0.2,
		}, rng)
		u, flows, err := OptimalMaxUtilization(g, dm)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := VerifyFlowConservation(g, dm, flows, 1e-5); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		recomputed := MaxUtilizationOfFlows(g, flows)
		if recomputed > u+1e-5 {
			t.Fatalf("trial %d: flows exceed claimed optimum: %g > %g", trial, recomputed, u)
		}
		// Shortest-path loads as an upper bound.
		sp := shortestPathMaxUtil(t, g, dm)
		if u > sp+1e-6 {
			t.Fatalf("trial %d: LP optimum %g worse than shortest path %g", trial, u, sp)
		}
	}
}

// shortestPathMaxUtil routes every demand on one hop-count shortest path.
func shortestPathMaxUtil(t *testing.T, g *graph.Graph, dm *traffic.DemandMatrix) float64 {
	t.Helper()
	loads := make([]float64, g.NumEdges())
	w := g.UnitWeights()
	for s := 0; s < g.NumNodes(); s++ {
		for dst := 0; dst < g.NumNodes(); dst++ {
			d := dm.At(s, dst)
			if d == 0 {
				continue
			}
			path, err := g.ShortestPath(s, dst, w)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i+1 < len(path); i++ {
				ei, err := g.EdgeBetween(path[i], path[i+1])
				if err != nil {
					t.Fatal(err)
				}
				loads[ei] += d
			}
		}
	}
	u := 0.0
	for ei, l := range loads {
		if v := l / g.Edge(ei).Capacity; v > u {
			u = v
		}
	}
	return u
}

func TestMCFOnAbilene(t *testing.T) {
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(9))
	dm := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	u, flows, err := OptimalMaxUtilization(g, dm)
	if err != nil {
		t.Fatal(err)
	}
	if u <= 0 {
		t.Fatalf("U_max=%g want positive", u)
	}
	if err := VerifyFlowConservation(g, dm, flows, 1e-4); err != nil {
		t.Fatal(err)
	}
	if got := MaxUtilizationOfFlows(g, flows); math.Abs(got-u) > 1e-4 {
		t.Fatalf("recomputed U=%g vs LP %g", got, u)
	}
}

func TestMCFDimensionMismatch(t *testing.T) {
	g := topo.Abilene()
	if _, _, err := OptimalMaxUtilization(g, traffic.NewDemandMatrix(3)); err == nil {
		t.Fatal("expected size mismatch error")
	}
}
