package lp

import (
	"fmt"

	"gddr/internal/graph"
	"gddr/internal/traffic"
)

// OptimalMeanUtilization solves the multicommodity-flow LP under the
// alternative utility function suggested by the paper's further-work
// section (§IX-A): minimise the mean link utilisation (1/|E|)·Σ_e
// load(e)/c(e) instead of the maximum. Flows remain destination-aggregated.
// Minimising total (equivalently mean) utilisation is the classic
// minimum-cost routing with cost 1/c(e) per unit flow.
func OptimalMeanUtilization(g *graph.Graph, dm *traffic.DemandMatrix) (float64, [][]float64, error) {
	n := g.NumNodes()
	ne := g.NumEdges()
	if dm.N != n {
		return 0, nil, fmt.Errorf("lp: demand matrix size %d != graph nodes %d", dm.N, n)
	}
	if ne == 0 {
		return 0, nil, fmt.Errorf("lp: graph has no edges")
	}
	numVars := n * ne
	p := NewProblem(numVars)
	for t := 0; t < n; t++ {
		for e := 0; e < ne; e++ {
			if err := p.SetObjectiveCoeff(t*ne+e, 1/(g.Edge(e).Capacity*float64(ne))); err != nil {
				return 0, nil, err
			}
		}
	}
	for t := 0; t < n; t++ {
		hasDemand := false
		for v := 0; v < n; v++ {
			if dm.At(v, t) > 0 {
				hasDemand = true
				break
			}
		}
		if !hasDemand {
			continue
		}
		for v := 0; v < n; v++ {
			if v == t {
				continue
			}
			terms := make([]Term, 0, len(g.OutEdges(v))+len(g.InEdges(v)))
			for _, ei := range g.OutEdges(v) {
				terms = append(terms, Term{Var: t*ne + ei, Coeff: 1})
			}
			for _, ei := range g.InEdges(v) {
				terms = append(terms, Term{Var: t*ne + ei, Coeff: -1})
			}
			if err := p.AddConstraint(terms, EQ, dm.At(v, t)); err != nil {
				return 0, nil, err
			}
		}
	}
	sol, err := p.Solve()
	if err != nil {
		return 0, nil, fmt.Errorf("lp: mean-utilisation flow: %w", err)
	}
	flows := make([][]float64, n)
	for t := 0; t < n; t++ {
		flows[t] = sol.X[t*ne : (t+1)*ne]
	}
	return sol.Objective, flows, nil
}
