package lp

import (
	"context"
	"fmt"

	"gddr/internal/graph"
	"gddr/internal/traffic"
)

// OptimalMeanUtilization solves the multicommodity-flow LP under the
// alternative utility function suggested by the paper's further-work
// section (§IX-A): minimise the mean link utilisation (1/|E|)·Σ_e
// load(e)/c(e) instead of the maximum. Flows remain destination-aggregated.
// Minimising total (equivalently mean) utilisation is the classic
// minimum-cost routing with cost 1/c(e) per unit flow.
func OptimalMeanUtilization(g *graph.Graph, dm *traffic.DemandMatrix) (float64, [][]float64, error) {
	u, flows, _, err := OptimalMeanUtilizationCtx(context.Background(), g, dm, nil)
	return u, flows, err
}

// OptimalMeanUtilizationCtx is OptimalMeanUtilization with cooperative
// cancellation and an optional warm-start basis, mirroring
// OptimalMaxUtilizationCtx.
func OptimalMeanUtilizationCtx(ctx context.Context, g *graph.Graph, dm *traffic.DemandMatrix, warm *Basis) (float64, [][]float64, MCFStats, error) {
	n := g.NumNodes()
	ne := g.NumEdges()
	if dm.N != n {
		return 0, nil, MCFStats{}, fmt.Errorf("lp: demand matrix size %d != graph nodes %d", dm.N, n)
	}
	if ne == 0 {
		return 0, nil, MCFStats{}, fmt.Errorf("lp: graph has no edges")
	}
	numVars := n * ne
	p := NewProblem(numVars)
	for t := 0; t < n; t++ {
		for e := 0; e < ne; e++ {
			if err := p.SetObjectiveCoeff(t*ne+e, 1/(g.Edge(e).Capacity*float64(ne))); err != nil {
				return 0, nil, MCFStats{}, err
			}
		}
	}
	if err := addConservationRows(p, g, dm); err != nil {
		return 0, nil, MCFStats{}, err
	}
	sol, err := p.SolveOpts(ctx, SolveOptions{Warm: warm})
	if err != nil {
		return 0, nil, MCFStats{}, fmt.Errorf("lp: mean-utilisation flow: %w", err)
	}
	flows := make([][]float64, n)
	for t := 0; t < n; t++ {
		flows[t] = sol.X[t*ne : (t+1)*ne]
	}
	stats := MCFStats{Pivots: sol.Pivots, WarmStarted: sol.WarmStarted, Basis: sol.Basis}
	return sol.Objective, flows, stats, nil
}
