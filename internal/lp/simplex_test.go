package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func solveOrFatal(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return sol
}

func TestSimpleMaximisationViaMinimisation(t *testing.T) {
	// max 3x+2y s.t. x+y<=4, x+3y<=6  => min -3x-2y. Optimum x=4,y=0, obj=-12.
	p := NewProblem(2)
	if err := p.SetObjectiveCoeff(0, -3); err != nil {
		t.Fatal(err)
	}
	if err := p.SetObjectiveCoeff(1, -2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]Term{{0, 1}, {1, 3}}, LE, 6); err != nil {
		t.Fatal(err)
	}
	sol := solveOrFatal(t, p)
	if math.Abs(sol.Objective-(-12)) > 1e-7 {
		t.Fatalf("objective %g want -12 (x=%v)", sol.Objective, sol.X)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x+y s.t. x+y = 5, x - y = 1 => x=3, y=2, obj=5.
	p := NewProblem(2)
	p.SetObjectiveCoeff(0, 1)
	p.SetObjectiveCoeff(1, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 5)
	p.AddConstraint([]Term{{0, 1}, {1, -1}}, EQ, 1)
	sol := solveOrFatal(t, p)
	if math.Abs(sol.X[0]-3) > 1e-7 || math.Abs(sol.X[1]-2) > 1e-7 {
		t.Fatalf("x=%v want [3 2]", sol.X)
	}
}

func TestGEConstraints(t *testing.T) {
	// min 2x+y s.t. x+y >= 3, x >= 1. Optimum x=1? obj = 2+2 = 4 at (1,2);
	// at (0,3) infeasible (x>=1); at (3,0): 6. So (1,2) obj 4.
	p := NewProblem(2)
	p.SetObjectiveCoeff(0, 2)
	p.SetObjectiveCoeff(1, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 3)
	p.AddConstraint([]Term{{0, 1}}, GE, 1)
	sol := solveOrFatal(t, p)
	if math.Abs(sol.Objective-4) > 1e-7 {
		t.Fatalf("objective %g want 4 (x=%v)", sol.Objective, sol.X)
	}
}

func TestNegativeRHSNormalisation(t *testing.T) {
	// min x s.t. -x <= -2  (i.e. x >= 2).
	p := NewProblem(1)
	p.SetObjectiveCoeff(0, 1)
	p.AddConstraint([]Term{{0, -1}}, LE, -2)
	sol := solveOrFatal(t, p)
	if math.Abs(sol.X[0]-2) > 1e-7 {
		t.Fatalf("x=%v want 2", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 2 simultaneously.
	p := NewProblem(1)
	p.SetObjectiveCoeff(0, 1)
	p.AddConstraint([]Term{{0, 1}}, LE, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	_, err := p.Solve()
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err=%v want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with only x >= 0 (x unbounded above).
	p := NewProblem(1)
	p.SetObjectiveCoeff(0, -1)
	_, err := p.Solve()
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err=%v want ErrUnbounded", err)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Redundant constraints introducing degeneracy.
	p := NewProblem(2)
	p.SetObjectiveCoeff(0, -1)
	p.SetObjectiveCoeff(1, -1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 2) // duplicate
	p.AddConstraint([]Term{{0, 2}, {1, 2}}, LE, 4) // scaled duplicate
	p.AddConstraint([]Term{{0, 1}}, LE, 2)
	sol := solveOrFatal(t, p)
	if math.Abs(sol.Objective-(-2)) > 1e-7 {
		t.Fatalf("objective %g want -2", sol.Objective)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// x + y = 2 stated twice; min x.
	p := NewProblem(2)
	p.SetObjectiveCoeff(0, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 2)
	p.AddConstraint([]Term{{0, 2}, {1, 2}}, EQ, 4)
	sol := solveOrFatal(t, p)
	if math.Abs(sol.X[0]) > 1e-7 || math.Abs(sol.X[1]-2) > 1e-7 {
		t.Fatalf("x=%v want [0 2]", sol.X)
	}
}

func TestInvalidInputs(t *testing.T) {
	p := NewProblem(2)
	if err := p.SetObjectiveCoeff(5, 1); err == nil {
		t.Fatal("expected out-of-range objective error")
	}
	if err := p.AddConstraint([]Term{{7, 1}}, LE, 1); err == nil {
		t.Fatal("expected out-of-range constraint error")
	}
	if err := p.AddConstraint([]Term{{0, 1}}, Sense(99), 1); err == nil {
		t.Fatal("expected invalid-sense error")
	}
}

// TestRandomLPsAgainstBruteForce cross-checks the simplex optimum against a
// dense grid/vertex enumeration on random small bounded LPs.
func TestRandomLPsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		// min c·x s.t. A x <= b with x in a box [0,10]^2 baked in via
		// constraints, so the problem is always feasible (x=0) and bounded.
		c := []float64{rng.NormFloat64(), rng.NormFloat64()}
		numRows := 2 + rng.Intn(3)
		type rowT struct {
			a [2]float64
			b float64
		}
		rows := make([]rowT, numRows)
		for i := range rows {
			rows[i] = rowT{
				a: [2]float64{rng.NormFloat64(), rng.NormFloat64()},
				b: math.Abs(rng.NormFloat64()) * 5,
			}
		}
		p := NewProblem(2)
		p.SetObjectiveCoeff(0, c[0])
		p.SetObjectiveCoeff(1, c[1])
		for _, r := range rows {
			p.AddConstraint([]Term{{0, r.a[0]}, {1, r.a[1]}}, LE, r.b)
		}
		p.AddConstraint([]Term{{0, 1}}, LE, 10)
		p.AddConstraint([]Term{{1, 1}}, LE, 10)
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Dense grid search (resolution fine enough vs tolerance below).
		best := math.Inf(1)
		const steps = 200
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				x := 10 * float64(i) / steps
				y := 10 * float64(j) / steps
				ok := true
				for _, r := range rows {
					if r.a[0]*x+r.a[1]*y > r.b+1e-9 {
						ok = false
						break
					}
				}
				if ok {
					if v := c[0]*x + c[1]*y; v < best {
						best = v
					}
				}
			}
		}
		if sol.Objective > best+1e-6 {
			t.Fatalf("trial %d: simplex %g worse than grid %g", trial, sol.Objective, best)
		}
		if sol.Objective < best-0.2 {
			// Grid is coarse; simplex may be slightly better but not wildly.
			t.Fatalf("trial %d: simplex %g implausibly better than grid %g", trial, sol.Objective, best)
		}
	}
}
