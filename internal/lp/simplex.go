// Package lp implements two-phase primal simplex linear-programming solvers
// and the multicommodity-flow formulation used to compute the optimal
// (minimum achievable) maximum link utilisation that anchors the GDDR reward
// signal. It is a from-scratch substitute for Google OR-Tools (DESIGN.md
// substitution #1).
//
// Solve runs the revised simplex (revised.go): sparse column pricing against
// an explicit basis inverse, warm-startable from a previous Basis, with
// cooperative context cancellation. SolveDense runs the original dense
// tableau, kept as the independent cross-check oracle for the revised path.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of a linear constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota + 1 // a·x <= b
	GE                  // a·x >= b
	EQ                  // a·x == b
)

// Solver failure modes.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
	ErrIterations = errors.New("lp: iteration limit exceeded")
)

const eps = 1e-9

// Term is one non-zero coefficient of a constraint row.
type Term struct {
	Var   int
	Coeff float64
}

type row struct {
	terms []Term
	sense Sense
	rhs   float64
}

// Problem is a linear program over non-negative variables:
// minimise c·x subject to the added constraints and x >= 0.
type Problem struct {
	numVars int
	obj     []float64
	rows    []row
}

// NewProblem creates a problem with numVars non-negative variables and a
// zero objective.
func NewProblem(numVars int) *Problem {
	return &Problem{numVars: numVars, obj: make([]float64, numVars)}
}

// SetObjectiveCoeff sets the objective coefficient of variable v.
func (p *Problem) SetObjectiveCoeff(v int, c float64) error {
	if v < 0 || v >= p.numVars {
		return fmt.Errorf("lp: variable %d out of range [0,%d)", v, p.numVars)
	}
	p.obj[v] = c
	return nil
}

// AddConstraint adds a sparse constraint row.
func (p *Problem) AddConstraint(terms []Term, sense Sense, rhs float64) error {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= p.numVars {
			return fmt.Errorf("lp: constraint references variable %d out of range [0,%d)", t.Var, p.numVars)
		}
	}
	if sense != LE && sense != GE && sense != EQ {
		return fmt.Errorf("lp: invalid constraint sense %d", sense)
	}
	p.rows = append(p.rows, row{terms: append([]Term(nil), terms...), sense: sense, rhs: rhs})
	return nil
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the number of constraint rows.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// Solution is the result of a successful solve.
type Solution struct {
	X         []float64 // values of the structural variables
	Objective float64   // c·x at the optimum

	// Basis is the final revised-simplex basis, usable to warm-start a
	// later solve of a structurally identical problem (nil from SolveDense).
	Basis *Basis
	// Pivots counts simplex pivots performed (0 from SolveDense).
	Pivots int
	// WarmStarted reports whether the solve reused a supplied Basis.
	WarmStarted bool
}

// Solve runs the revised two-phase primal simplex and returns the optimal
// solution. See SolveOpts for warm starts and cancellation.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveOpts(context.Background(), SolveOptions{})
}

// SolveDense runs the dense-tableau two-phase primal simplex. It is the
// independent oracle the revised solver is cross-checked against; prefer
// Solve everywhere else.
func (p *Problem) SolveDense() (*Solution, error) {
	t := newTableau(p)
	if err := t.phase1(); err != nil {
		return nil, err
	}
	if err := t.phase2(p); err != nil {
		return nil, err
	}
	x := t.extract(p.numVars)
	var obj float64
	for i, c := range p.obj {
		obj += c * x[i]
	}
	return &Solution{X: x, Objective: obj}, nil
}

// tableau is a dense simplex tableau. Columns are laid out as structural
// variables, then slack/surplus variables, then artificial variables, then
// the RHS column.
type tableau struct {
	m, n      int // constraint rows, total variable columns (excl. RHS)
	a         [][]float64
	basis     []int
	artStart  int // first artificial column
	numStruct int
}

func newTableau(p *Problem) *tableau {
	m := len(p.rows)
	// Count slack/surplus columns.
	numSlack := 0
	for _, r := range p.rows {
		if r.sense != EQ {
			numSlack++
		}
	}
	n := p.numVars + numSlack + m // worst case: one artificial per row
	t := &tableau{
		m:         m,
		n:         n,
		a:         make([][]float64, m),
		basis:     make([]int, m),
		artStart:  p.numVars + numSlack,
		numStruct: p.numVars,
	}
	slack := p.numVars
	art := t.artStart
	numArt := 0
	for i, r := range p.rows {
		t.a[i] = make([]float64, n+1)
		sign := 1.0
		if r.rhs < 0 {
			sign = -1.0
		}
		for _, term := range r.terms {
			t.a[i][term.Var] += sign * term.Coeff
		}
		t.a[i][n] = sign * r.rhs
		sense := r.sense
		if sign < 0 {
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		switch sense {
		case LE:
			t.a[i][slack] = 1
			t.basis[i] = slack
			slack++
		case GE:
			t.a[i][slack] = -1
			slack++
			t.a[i][art] = 1
			t.basis[i] = art
			art++
			numArt++
		case EQ:
			t.a[i][art] = 1
			t.basis[i] = art
			art++
			numArt++
		}
	}
	// Shrink column space to what was actually used.
	used := art
	t.n = used
	for i := range t.a {
		rhs := t.a[i][n]
		t.a[i] = append(t.a[i][:used:used], rhs)
	}
	return t
}

// phase1 minimises the sum of artificial variables to find a basic feasible
// solution.
func (t *tableau) phase1() error {
	if t.artStart == t.n {
		return nil // no artificials: slack basis is already feasible
	}
	// Objective row: minimise sum of artificials. Reduced costs must be
	// priced out against the artificial basis rows.
	obj := make([]float64, t.n+1)
	for j := t.artStart; j < t.n; j++ {
		obj[j] = 1
	}
	for i, b := range t.basis {
		if b >= t.artStart {
			for j := 0; j <= t.n; j++ {
				obj[j] -= t.a[i][j]
			}
		}
	}
	if err := t.iterate(obj, t.artStart); err != nil {
		if errors.Is(err, ErrUnbounded) {
			// Phase-1 objective is bounded below by 0; unboundedness here
			// indicates a numerical failure.
			return fmt.Errorf("lp: phase-1 numerical failure: %w", err)
		}
		return err
	}
	if -obj[t.n] > 1e-7 {
		return ErrInfeasible
	}
	// Drive any remaining artificial basics out of the basis.
	for i, b := range t.basis {
		if b < t.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: zero it out (RHS must be ~0 after phase 1).
			for j := 0; j <= t.n; j++ {
				t.a[i][j] = 0
			}
		}
	}
	return nil
}

// phase2 optimises the real objective from the feasible basis.
func (t *tableau) phase2(p *Problem) error {
	obj := make([]float64, t.n+1)
	copy(obj, p.obj)
	// Price out basic variables.
	for i, b := range t.basis {
		c := obj[b]
		if c == 0 {
			continue
		}
		for j := 0; j <= t.n; j++ {
			obj[j] -= c * t.a[i][j]
		}
	}
	return t.iterate(obj, t.artStart)
}

// iterate runs simplex pivots on the given objective row until optimal.
// Columns >= colLimit (artificials) are never chosen as entering variables.
// It uses Dantzig pricing with a switch to Bland's rule to guarantee
// termination under degeneracy.
func (t *tableau) iterate(obj []float64, colLimit int) error {
	maxIter := 200 * (t.m + t.n + 16)
	blandAfter := maxIter / 2
	for iter := 0; iter < maxIter; iter++ {
		col := -1
		if iter < blandAfter {
			best := -eps
			for j := 0; j < colLimit; j++ {
				if obj[j] < best {
					best = obj[j]
					col = j
				}
			}
		} else {
			for j := 0; j < colLimit; j++ {
				if obj[j] < -eps {
					col = j
					break
				}
			}
		}
		if col < 0 {
			return nil // optimal
		}
		// Ratio test; Bland tie-break on basis index for anti-cycling.
		prow := -1
		var bestRatio float64
		for i := 0; i < t.m; i++ {
			aij := t.a[i][col]
			if aij <= eps {
				continue
			}
			ratio := t.a[i][t.n] / aij
			if prow < 0 || ratio < bestRatio-eps ||
				(ratio < bestRatio+eps && t.basis[i] < t.basis[prow]) {
				prow = i
				bestRatio = ratio
			}
		}
		if prow < 0 {
			return ErrUnbounded
		}
		t.pivot(prow, col)
		// Update objective row.
		c := obj[col]
		if c != 0 {
			for j := 0; j <= t.n; j++ {
				obj[j] -= c * t.a[prow][j]
			}
		}
	}
	return ErrIterations
}

// pivot makes column col basic in row prow.
func (t *tableau) pivot(prow, col int) {
	piv := t.a[prow][col]
	inv := 1.0 / piv
	rowData := t.a[prow]
	for j := 0; j <= t.n; j++ {
		rowData[j] *= inv
	}
	rowData[col] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == prow {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		target := t.a[i]
		for j := 0; j <= t.n; j++ {
			target[j] -= f * rowData[j]
		}
		target[col] = 0 // exact
	}
	t.basis[prow] = col
}

// extract reads the structural variable values from the basis.
func (t *tableau) extract(numVars int) []float64 {
	x := make([]float64, numVars)
	for i, b := range t.basis {
		if b < numVars {
			v := t.a[i][t.n]
			if v < 0 && v > -1e-7 {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}
