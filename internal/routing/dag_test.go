package routing

import (
	"math"
	"math/rand"
	"testing"

	"gddr/internal/graph"
	"gddr/internal/topo"
	"gddr/internal/traffic"
)

func TestDAGRetainsMultipath(t *testing.T) {
	// Diamond 0→{1,2}→3 with asymmetric weights: both branches must stay in
	// the DAG (the paper's loop-breaking explicitly keeps longer paths for
	// load balancing; downhill pruning keeps every strictly-downhill path).
	g := graph.New(4)
	e01 := g.MustAddEdge(0, 1, 10)
	e13 := g.MustAddEdge(1, 3, 10)
	e02 := g.MustAddEdge(0, 2, 10)
	e23 := g.MustAddEdge(2, 3, 10)
	// Both branch entry nodes must be strictly closer to the sink than the
	// source for both branches to survive downhill pruning: d(1)=5, d(2)=2,
	// d(0)=10, so both 0→1 and 0→2 descend.
	w := make([]float64, 4)
	w[e01], w[e13] = 5, 5
	w[e02], w[e23] = 8, 2
	keep, dist, err := DestinationDAG(g, 3, w)
	if err != nil {
		t.Fatal(err)
	}
	if !keep[e01] || !keep[e13] || !keep[e02] || !keep[e23] {
		t.Fatalf("downhill pruning dropped a strictly-downhill branch: keep=%v dist=%v", keep, dist)
	}
}

func TestDAGDropsUphillEdges(t *testing.T) {
	// Triangle with sink 2: the edge 2→0 (leaving the sink) and any edge
	// increasing distance must be dropped.
	g := graph.New(3)
	e01 := g.MustAddEdge(0, 1, 10)
	e12 := g.MustAddEdge(1, 2, 10)
	e20 := g.MustAddEdge(2, 0, 10)
	e10 := g.MustAddEdge(1, 0, 10)
	keep, _, err := DestinationDAG(g, 2, []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if keep[e20] {
		t.Fatal("edge leaving the sink retained")
	}
	if keep[e10] {
		t.Fatal("uphill edge 1->0 retained (d(1)=1 < d(0)=2)")
	}
	if !keep[e01] || !keep[e12] {
		t.Fatal("downhill path dropped")
	}
}

func TestSplittingRatiosClampTinyWeights(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 2, 10)
	// Zero and negative-ish weights must be clamped, not rejected.
	r, err := SplittingRatios(g, 2, []float64{0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio[0] != 1 || r.Ratio[1] != 1 {
		t.Fatalf("ratios=%v want single-path 1/1", r.Ratio)
	}
}

func TestSplittingRatiosRejectNaN(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 2, 10)
	if _, err := SplittingRatios(g, 2, []float64{math.NaN(), 1}, 2); err == nil {
		t.Fatal("NaN weight accepted")
	}
}

func TestLoadsRejectsNegativeDemand(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 0, 10)
	r, err := SplittingRatios(g, 1, []float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	dm := traffic.NewDemandMatrix(2)
	dm.Data[1] = -5 // (0,1) negative
	loads := make([]float64, 2)
	if err := r.Loads(g, dm, loads); err == nil {
		t.Fatal("negative demand accepted")
	}
}

// TestNoFlowLostAnywhere: total injected demand equals total absorbed
// demand at every destination under random weights — the §IV-A "no traffic
// is lost" constraint end-to-end.
func TestNoFlowLostAnywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		g, err := graph.RandomConnected(6+rng.Intn(6), 3, 5, 20, rng)
		if err != nil {
			t.Fatal(err)
		}
		dm := traffic.Bimodal(g.NumNodes(), traffic.BimodalParams{
			LowMean: 5, LowStd: 1, HighMean: 15, HighStd: 2, ElephantProb: 0.25,
		}, rng)
		w := make([]float64, g.NumEdges())
		for i := range w {
			w[i] = 0.1 + 3*rng.Float64()
		}
		for sink := 0; sink < g.NumNodes(); sink++ {
			r, err := SplittingRatios(g, sink, w, 1+rng.Float64()*4)
			if err != nil {
				t.Fatalf("trial %d sink %d: %v", trial, sink, err)
			}
			loads := make([]float64, g.NumEdges())
			if err := r.Loads(g, dm, loads); err != nil {
				t.Fatal(err)
			}
			var absorbed float64
			for _, ei := range g.InEdges(sink) {
				absorbed += loads[ei]
			}
			for _, ei := range g.OutEdges(sink) {
				absorbed -= loads[ei] // sink must emit nothing
			}
			want := dm.InSum(sink)
			if math.Abs(absorbed-want) > 1e-6*(1+want) {
				t.Fatalf("trial %d sink %d: absorbed %g want %g", trial, sink, absorbed, want)
			}
		}
	}
}

// TestGammaChangesSplit: on a graph with asymmetric weights, γ must shift
// the split between branches (sharper = more on the cheaper branch).
func TestGammaChangesSplit(t *testing.T) {
	g := graph.New(4)
	e01 := g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 3, 10)
	e02 := g.MustAddEdge(0, 2, 10)
	g.MustAddEdge(2, 3, 10)
	// d(1)=2, d(2)=1, d(0)=5: both branches downhill, scores 5 vs 6, so the
	// branch via node 1 is cheaper but not exclusively chosen.
	w := []float64{3, 2, 5, 1}
	soft, err := SplittingRatios(g, 3, w, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sharp, err := SplittingRatios(g, 3, w, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !(sharp.Ratio[e01] > soft.Ratio[e01]) {
		t.Fatalf("sharper gamma must concentrate on cheap branch: %g vs %g",
			sharp.Ratio[e01], soft.Ratio[e01])
	}
	if sharp.Ratio[e02] >= soft.Ratio[e02] {
		t.Fatal("expensive branch should lose share with sharper gamma")
	}
}

// TestPerFlowRoutingConstraints verifies the two formal constraints of
// §IV-A on Abilene for every destination: ratios form a distribution at
// every transit vertex and the destination forwards nothing.
func TestPerFlowRoutingConstraints(t *testing.T) {
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(43))
	w := make([]float64, g.NumEdges())
	for i := range w {
		w[i] = 0.2 + rng.Float64()*2
	}
	for sink := 0; sink < g.NumNodes(); sink++ {
		r, err := SplittingRatios(g, sink, w, 2)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumNodes(); v++ {
			var sum float64
			for _, ei := range g.OutEdges(v) {
				sum += r.Ratio[ei]
			}
			if v == sink && sum != 0 {
				t.Fatalf("sink %d forwards traffic", sink)
			}
			if v != sink && math.Abs(sum-1) > 1e-9 {
				t.Fatalf("vertex %d ratios sum to %g for sink %d", v, sum, sink)
			}
		}
	}
}
