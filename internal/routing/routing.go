// Package routing implements the paper's routing translation (§VI): deriving
// a fully-specified, loop-free, multipath routing strategy from per-edge
// weights via softmin splitting ratios, plus the evaluation machinery that
// turns a routing and a demand matrix into link loads and the maximum link
// utilisation, and the shortest-path baseline of the evaluation section.
package routing

import (
	"fmt"
	"math"
	"sort"

	"gddr/internal/graph"
	"gddr/internal/traffic"
)

// DefaultGamma is the softmin spread parameter used when a policy does not
// learn γ itself (the iterative GNN policy emits γ as part of its action).
const DefaultGamma = 2.0

// MinWeight is the smallest admissible edge weight; weights are clamped up
// to it so that softmin distances stay strictly positive and the downhill
// DAG construction is well defined.
const MinWeight = 1e-6

// Softmin normalises values into a probability distribution favouring small
// entries: softmin(x)_i = exp(-γ·x_i) / Σ_j exp(-γ·x_j). It is numerically
// stabilised by shifting by the minimum entry.
func Softmin(values []float64, gamma float64) []float64 {
	out := make([]float64, len(values))
	if len(values) == 0 {
		return out
	}
	minV := values[0]
	for _, v := range values {
		if v < minV {
			minV = v
		}
	}
	var sum float64
	for i, v := range values {
		e := math.Exp(-gamma * (v - minV))
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// DestinationDAG converts the weighted graph into the loop-free DAG used for
// routing towards sink, together with the per-node distances to the sink.
//
// The paper's Figure 3 algorithm (Dijkstra plus frontier-meets path repair)
// is underspecified; we implement the standard equivalent documented in
// DESIGN.md substitution #4: keep edge (u,v) iff d(u) > d(v) where d is the
// weighted shortest-path distance to the sink. The result is acyclic, keeps
// every shortest path and every strictly "downhill" longer path, and
// therefore retains the multipath diversity the paper's loop-breaking aims
// to preserve.
func DestinationDAG(g *graph.Graph, sink int, weights []float64) (keep []bool, dist []float64, err error) {
	dist, err = g.DistancesTo(sink, weights)
	if err != nil {
		return nil, nil, err
	}
	keep = make([]bool, g.NumEdges())
	for ei, e := range g.Edges() {
		if math.IsInf(dist[e.From], 1) || math.IsInf(dist[e.To], 1) {
			continue
		}
		if dist[e.From] > dist[e.To] {
			keep[ei] = true
		}
	}
	return keep, dist, nil
}

// Ratios holds, for one destination, the per-edge splitting ratios: for each
// vertex v, the kept out-edges of v carry the fraction Ratio[e] of all
// traffic transiting v that is destined for Sink.
type Ratios struct {
	Sink  int
	Ratio []float64 // per edge index; zero on dropped edges
	Keep  []bool
	Dist  []float64
}

// SplittingRatios runs the paper's softmin routing algorithm (Figure 2) for
// one destination: per vertex, the score of each kept out-edge is the edge
// weight plus the neighbour's distance to the sink, and the splitting
// ratios are the softmin of those scores.
func SplittingRatios(g *graph.Graph, sink int, weights []float64, gamma float64) (*Ratios, error) {
	if gamma <= 0 {
		return nil, fmt.Errorf("routing: gamma must be positive, got %g", gamma)
	}
	clamped := make([]float64, len(weights))
	for i, w := range weights {
		if math.IsNaN(w) {
			return nil, fmt.Errorf("routing: weight %d is NaN", i)
		}
		if w < MinWeight {
			w = MinWeight
		}
		clamped[i] = w
	}
	keep, dist, err := DestinationDAG(g, sink, clamped)
	if err != nil {
		return nil, err
	}
	ratio := make([]float64, g.NumEdges())
	for v := 0; v < g.NumNodes(); v++ {
		if v == sink || math.IsInf(dist[v], 1) {
			continue
		}
		var kept []int
		var scores []float64
		for _, ei := range g.OutEdges(v) {
			if keep[ei] {
				kept = append(kept, ei)
				scores = append(scores, clamped[ei]+dist[g.Edge(ei).To])
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("routing: node %d has no downhill edge to sink %d", v, sink)
		}
		probs := Softmin(scores, gamma)
		for i, ei := range kept {
			ratio[ei] = probs[i]
		}
	}
	return &Ratios{Sink: sink, Ratio: ratio, Keep: keep, Dist: dist}, nil
}

// Loads propagates all demand destined for r.Sink through the splitting
// ratios and accumulates the per-edge load into loads (len NumEdges).
// Propagation processes vertices in decreasing distance order, which is a
// topological order of the downhill DAG.
func (r *Ratios) Loads(g *graph.Graph, dm *traffic.DemandMatrix, loads []float64) error {
	n := g.NumNodes()
	inflow := make([]float64, n)
	total := 0.0
	for s := 0; s < n; s++ {
		d := dm.At(s, r.Sink)
		if d < 0 {
			return fmt.Errorf("routing: negative demand at (%d,%d)", s, r.Sink)
		}
		if d > 0 && math.IsInf(r.Dist[s], 1) {
			return fmt.Errorf("routing: node %d cannot reach sink %d but has demand", s, r.Sink)
		}
		inflow[s] = d
		total += d
	}
	if total == 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return r.Dist[order[i]] > r.Dist[order[j]] })
	for _, v := range order {
		if v == r.Sink || inflow[v] == 0 {
			continue
		}
		if math.IsInf(r.Dist[v], 1) {
			continue
		}
		for _, ei := range g.OutEdges(v) {
			if !r.Keep[ei] || r.Ratio[ei] == 0 {
				continue
			}
			f := inflow[v] * r.Ratio[ei]
			loads[ei] += f
			inflow[g.Edge(ei).To] += f
		}
		inflow[v] = 0
	}
	return nil
}

// Result is the outcome of evaluating a routing strategy on a demand matrix.
type Result struct {
	MaxUtilization float64
	Loads          []float64 // per-edge carried traffic
	Utilization    []float64 // per-edge load/capacity
}

// MeanUtilization returns the average per-edge utilisation, the alternative
// utility function of the paper's further-work section (§IX-A).
func (r *Result) MeanUtilization() float64 {
	if len(r.Utilization) == 0 {
		return 0
	}
	var sum float64
	for _, u := range r.Utilization {
		sum += u
	}
	return sum / float64(len(r.Utilization))
}

// EvaluateWeights runs the full softmin routing translation for every
// destination with demand and returns the maximum link utilisation, the
// paper's evaluation metric.
func EvaluateWeights(g *graph.Graph, dm *traffic.DemandMatrix, weights []float64, gamma float64) (*Result, error) {
	if dm.N != g.NumNodes() {
		return nil, fmt.Errorf("routing: demand matrix size %d != graph nodes %d", dm.N, g.NumNodes())
	}
	if len(weights) != g.NumEdges() {
		return nil, fmt.Errorf("routing: %d weights for %d edges", len(weights), g.NumEdges())
	}
	loads := make([]float64, g.NumEdges())
	for sink := 0; sink < g.NumNodes(); sink++ {
		if dm.InSum(sink) == 0 {
			continue
		}
		ratios, err := SplittingRatios(g, sink, weights, gamma)
		if err != nil {
			return nil, fmt.Errorf("routing: sink %d: %w", sink, err)
		}
		if err := ratios.Loads(g, dm, loads); err != nil {
			return nil, fmt.Errorf("routing: sink %d: %w", sink, err)
		}
	}
	util := make([]float64, g.NumEdges())
	uMax := 0.0
	for ei := range util {
		util[ei] = loads[ei] / g.Edge(ei).Capacity
		if util[ei] > uMax {
			uMax = util[ei]
		}
	}
	return &Result{MaxUtilization: uMax, Loads: loads, Utilization: util}, nil
}

// ShortestPath evaluates classic single-shortest-path routing (hop count,
// deterministic smallest-id tie break), the baseline drawn as a dotted line
// in the paper's Figures 6 and 8.
func ShortestPath(g *graph.Graph, dm *traffic.DemandMatrix) (*Result, error) {
	if dm.N != g.NumNodes() {
		return nil, fmt.Errorf("routing: demand matrix size %d != graph nodes %d", dm.N, g.NumNodes())
	}
	weights := g.UnitWeights()
	loads := make([]float64, g.NumEdges())
	const eps = 1e-9
	for sink := 0; sink < g.NumNodes(); sink++ {
		if dm.InSum(sink) == 0 {
			continue
		}
		dist, err := g.DistancesTo(sink, weights)
		if err != nil {
			return nil, err
		}
		// next[v] is the single next-hop edge from v towards the sink.
		next := make([]int, g.NumNodes())
		for v := range next {
			next[v] = -1
		}
		for v := 0; v < g.NumNodes(); v++ {
			if v == sink || math.IsInf(dist[v], 1) {
				continue
			}
			bestEdge := -1
			bestTo := -1
			for _, ei := range g.OutEdges(v) {
				to := g.Edge(ei).To
				if math.Abs(weights[ei]+dist[to]-dist[v]) <= eps {
					if bestEdge == -1 || to < bestTo {
						bestEdge = ei
						bestTo = to
					}
				}
			}
			if bestEdge == -1 {
				return nil, fmt.Errorf("routing: no shortest-path next hop at node %d towards %d", v, sink)
			}
			next[v] = bestEdge
		}
		// Propagate in decreasing-distance order.
		order := make([]int, g.NumNodes())
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool { return dist[order[i]] > dist[order[j]] })
		inflow := make([]float64, g.NumNodes())
		for s := 0; s < g.NumNodes(); s++ {
			d := dm.At(s, sink)
			if d > 0 && math.IsInf(dist[s], 1) {
				return nil, fmt.Errorf("routing: node %d cannot reach sink %d but has demand", s, sink)
			}
			inflow[s] = d
		}
		for _, v := range order {
			if v == sink || inflow[v] == 0 || next[v] < 0 {
				continue
			}
			loads[next[v]] += inflow[v]
			inflow[g.Edge(next[v]).To] += inflow[v]
			inflow[v] = 0
		}
	}
	util := make([]float64, g.NumEdges())
	uMax := 0.0
	for ei := range util {
		util[ei] = loads[ei] / g.Edge(ei).Capacity
		if util[ei] > uMax {
			uMax = util[ei]
		}
	}
	return &Result{MaxUtilization: uMax, Loads: loads, Utilization: util}, nil
}

// InverseCapacityECMP evaluates softmin routing with oblivious inverse-
// capacity weights and a sharp gamma, approximating OSPF-with-recommended-
// weights ECMP: an additional traffic-oblivious baseline.
func InverseCapacityECMP(g *graph.Graph, dm *traffic.DemandMatrix) (*Result, error) {
	return EvaluateWeights(g, dm, g.InverseCapacityWeights(), 10*DefaultGamma)
}
