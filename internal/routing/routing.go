// Package routing implements the paper's routing translation (§VI): deriving
// a fully-specified, loop-free, multipath routing strategy from per-edge
// weights via softmin splitting ratios, plus the evaluation machinery that
// turns a routing and a demand matrix into link loads and the maximum link
// utilisation, and the shortest-path baseline of the evaluation section.
package routing

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"gddr/internal/graph"
	"gddr/internal/traffic"
)

// DefaultGamma is the softmin spread parameter used when a policy does not
// learn γ itself (the iterative GNN policy emits γ as part of its action).
const DefaultGamma = 2.0

// MinWeight is the smallest admissible edge weight; weights are clamped up
// to it so that softmin distances stay strictly positive and the downhill
// DAG construction is well defined.
const MinWeight = 1e-6

// Softmin normalises values into a probability distribution favouring small
// entries: softmin(x)_i = exp(-γ·x_i) / Σ_j exp(-γ·x_j). It is numerically
// stabilised by shifting by the minimum entry.
func Softmin(values []float64, gamma float64) []float64 {
	out := make([]float64, len(values))
	if len(values) == 0 {
		return out
	}
	minV := values[0]
	for _, v := range values {
		if v < minV {
			minV = v
		}
	}
	var sum float64
	for i, v := range values {
		e := math.Exp(-gamma * (v - minV))
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// DestinationDAG converts the weighted graph into the loop-free DAG used for
// routing towards sink, together with the per-node distances to the sink.
//
// The paper's Figure 3 algorithm (Dijkstra plus frontier-meets path repair)
// is underspecified; we implement the standard equivalent documented in
// DESIGN.md substitution #4: keep edge (u,v) iff d(u) > d(v) where d is the
// weighted shortest-path distance to the sink. The result is acyclic, keeps
// every shortest path and every strictly "downhill" longer path, and
// therefore retains the multipath diversity the paper's loop-breaking aims
// to preserve.
func DestinationDAG(g *graph.Graph, sink int, weights []float64) (keep []bool, dist []float64, err error) {
	dist, err = g.DistancesTo(sink, weights)
	if err != nil {
		return nil, nil, err
	}
	keep = make([]bool, g.NumEdges())
	for ei, e := range g.Edges() {
		if math.IsInf(dist[e.From], 1) || math.IsInf(dist[e.To], 1) {
			continue
		}
		if dist[e.From] > dist[e.To] {
			keep[ei] = true
		}
	}
	return keep, dist, nil
}

// Ratios holds, for one destination, the per-edge splitting ratios: for each
// vertex v, the kept out-edges of v carry the fraction Ratio[e] of all
// traffic transiting v that is destined for Sink.
type Ratios struct {
	Sink  int
	Ratio []float64 // per edge index; zero on dropped edges
	Keep  []bool
	Dist  []float64
	// order is the vertex propagation order (decreasing distance to the
	// sink — a topological order of the downhill DAG), precomputed at
	// construction so repeated Loads calls do not re-sort.
	order []int
}

// ClampWeights validates weights (no NaN) and returns a copy with every
// entry clamped up to MinWeight, the form every per-sink routine consumes.
// Strategy clamps once per (weights, gamma) pair instead of once per sink.
func ClampWeights(weights []float64) ([]float64, error) {
	clamped := make([]float64, len(weights))
	for i, w := range weights {
		if math.IsNaN(w) {
			return nil, fmt.Errorf("routing: weight %d is NaN", i)
		}
		if w < MinWeight {
			w = MinWeight
		}
		clamped[i] = w
	}
	return clamped, nil
}

// SplittingRatios runs the paper's softmin routing algorithm (Figure 2) for
// one destination: per vertex, the score of each kept out-edge is the edge
// weight plus the neighbour's distance to the sink, and the splitting
// ratios are the softmin of those scores.
func SplittingRatios(g *graph.Graph, sink int, weights []float64, gamma float64) (*Ratios, error) {
	if gamma <= 0 {
		return nil, fmt.Errorf("routing: gamma must be positive, got %g", gamma)
	}
	clamped, err := ClampWeights(weights)
	if err != nil {
		return nil, err
	}
	return splittingRatiosClamped(g, sink, clamped, gamma)
}

// splittingRatiosClamped is SplittingRatios after weight validation and
// clamping, the shared path of the one-shot and Strategy-cached callers.
func splittingRatiosClamped(g *graph.Graph, sink int, clamped []float64, gamma float64) (*Ratios, error) {
	keep, dist, err := DestinationDAG(g, sink, clamped)
	if err != nil {
		return nil, err
	}
	ratio := make([]float64, g.NumEdges())
	for v := 0; v < g.NumNodes(); v++ {
		if v == sink || math.IsInf(dist[v], 1) {
			continue
		}
		var kept []int
		var scores []float64
		for _, ei := range g.OutEdges(v) {
			if keep[ei] {
				kept = append(kept, ei)
				scores = append(scores, clamped[ei]+dist[g.Edge(ei).To])
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("routing: node %d has no downhill edge to sink %d", v, sink)
		}
		probs := Softmin(scores, gamma)
		for i, ei := range kept {
			ratio[ei] = probs[i]
		}
	}
	return &Ratios{Sink: sink, Ratio: ratio, Keep: keep, Dist: dist, order: propagationOrder(dist)}, nil
}

// propagationOrder returns the vertices sorted by decreasing distance to the
// sink — the topological order of the downhill DAG that load propagation
// walks. Vertices at equal distance have no kept edge between them, so their
// relative order does not affect the propagated loads.
func propagationOrder(dist []float64) []int {
	order := make([]int, len(dist))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return dist[order[i]] > dist[order[j]] })
	return order
}

// Loads propagates all demand destined for r.Sink through the splitting
// ratios and accumulates the per-edge load into loads (len NumEdges).
//
// Loads ADDS into loads without zeroing it first — that is how the per-sink
// results compose into one total-load vector. A caller reusing a loads
// buffer across evaluations must therefore zero it between them, or the
// previous evaluation's loads silently double-count (EvaluateWeights and
// the Router serving path do exactly this reset).
func (r *Ratios) Loads(g *graph.Graph, dm *traffic.DemandMatrix, loads []float64) error {
	return r.AccumulateLoads(g, dm, loads, nil)
}

// AccumulateLoads is Loads with a caller-owned scratch buffer: inflow must
// be nil (allocated per call) or a slice of len NumNodes whose contents are
// overwritten. It exists so per-request serving code can propagate demand
// with zero allocations. The accumulation contract of Loads applies: loads
// is added into, not reset. Propagation processes vertices in decreasing
// distance order, which is a topological order of the downhill DAG.
//
//gddr:hotpath
func (r *Ratios) AccumulateLoads(g *graph.Graph, dm *traffic.DemandMatrix, loads, inflow []float64) error {
	n := g.NumNodes()
	if inflow == nil {
		//gddr:allow hotpath nil-scratch convenience path; serving callers pass a pooled buffer
		inflow = make([]float64, n)
	}
	total := 0.0
	for s := 0; s < n; s++ {
		d := dm.At(s, r.Sink)
		if d < 0 {
			//gddr:allow hotpath invalid-demand error path, not taken by well-formed requests
			return fmt.Errorf("routing: negative demand at (%d,%d)", s, r.Sink)
		}
		if d > 0 && math.IsInf(r.Dist[s], 1) {
			//gddr:allow hotpath unreachable-sink error path, not taken by well-formed requests
			return fmt.Errorf("routing: node %d cannot reach sink %d but has demand", s, r.Sink)
		}
		inflow[s] = d
		total += d
	}
	if total == 0 {
		return nil
	}
	order := r.order
	if order == nil {
		// Ratios assembled by hand (tests) lack the precomputed order.
		//gddr:allow hotpath built strategies precompute the order; only hand-assembled Ratios pay this
		order = propagationOrder(r.Dist)
	}
	for _, v := range order {
		if v == r.Sink || inflow[v] == 0 {
			continue
		}
		if math.IsInf(r.Dist[v], 1) {
			continue
		}
		for _, ei := range g.OutEdges(v) {
			if !r.Keep[ei] || r.Ratio[ei] == 0 {
				continue
			}
			f := inflow[v] * r.Ratio[ei]
			loads[ei] += f
			inflow[g.Edge(ei).To] += f
		}
		inflow[v] = 0
	}
	return nil
}

// Strategy is one fully-specified routing strategy: the per-sink splitting
// ratios induced by a (weights, gamma) pair on one graph, built lazily per
// sink and cached. It is the unit the serving fast path reuses across
// request batches while the policy keeps emitting the same weights — the
// softmin translation (§VI) runs once per sink per strategy instead of once
// per sink per batch. A Strategy is immutable once a sink is built and safe
// for concurrent use.
type Strategy struct {
	g       *graph.Graph
	weights []float64 // caller-supplied weights (pre-clamp), the cache key
	clamped []float64
	gamma   float64

	mu    sync.RWMutex
	sinks []*Ratios //gddr:guardedby mu  // indexed by sink; nil until first requested
}

// NewStrategy validates (weights, gamma) for g and returns an empty
// strategy; per-sink ratios are built on first use. weights is copied.
func NewStrategy(g *graph.Graph, weights []float64, gamma float64) (*Strategy, error) {
	if gamma <= 0 {
		return nil, fmt.Errorf("routing: gamma must be positive, got %g", gamma)
	}
	if len(weights) != g.NumEdges() {
		return nil, fmt.Errorf("routing: %d weights for %d edges", len(weights), g.NumEdges())
	}
	clamped, err := ClampWeights(weights)
	if err != nil {
		return nil, err
	}
	return &Strategy{
		g:       g,
		weights: append([]float64(nil), weights...),
		clamped: clamped,
		gamma:   gamma,
		sinks:   make([]*Ratios, g.NumNodes()),
	}, nil
}

// Gamma returns the softmin spread the strategy was built with.
func (s *Strategy) Gamma() float64 { return s.gamma }

// Weights returns the strategy's weights. The slice is shared: read-only.
func (s *Strategy) Weights() []float64 { return s.weights }

// Matches reports whether the strategy was built for exactly these weights
// and gamma — the cache-hit test. Comparison is bitwise on the pre-clamp
// weights, so a hit reproduces the miss path's output exactly.
func (s *Strategy) Matches(weights []float64, gamma float64) bool {
	if s.gamma != gamma || len(s.weights) != len(weights) {
		return false
	}
	for i, w := range s.weights {
		if w != weights[i] {
			return false
		}
	}
	return true
}

// Ratios returns the splitting ratios towards sink, building and caching
// them on first request. Safe for concurrent use; racing builders for the
// same sink compute identical ratios and the first stored result wins.
func (s *Strategy) Ratios(sink int) (*Ratios, error) {
	s.mu.RLock()
	rt := s.sinks[sink]
	s.mu.RUnlock()
	if rt != nil {
		return rt, nil
	}
	//gddr:allow hotpath ratios build once per (strategy, sink) and are cached; steady state hits the read path above
	rt, err := splittingRatiosClamped(s.g, sink, s.clamped, s.gamma)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if prev := s.sinks[sink]; prev != nil {
		rt = prev
	} else {
		s.sinks[sink] = rt
	}
	s.mu.Unlock()
	return rt, nil
}

// Result is the outcome of evaluating a routing strategy on a demand matrix.
type Result struct {
	MaxUtilization float64
	Loads          []float64 // per-edge carried traffic
	Utilization    []float64 // per-edge load/capacity
}

// MeanUtilization returns the average per-edge utilisation, the alternative
// utility function of the paper's further-work section (§IX-A).
func (r *Result) MeanUtilization() float64 {
	if len(r.Utilization) == 0 {
		return 0
	}
	var sum float64
	for _, u := range r.Utilization {
		sum += u
	}
	return sum / float64(len(r.Utilization))
}

// EvaluateWeights runs the full softmin routing translation for every
// destination with demand and returns the maximum link utilisation, the
// paper's evaluation metric. It builds a one-shot Strategy; serving code
// that reuses weights across demand matrices should hold the Strategy
// itself and call EvaluateStrategy.
func EvaluateWeights(g *graph.Graph, dm *traffic.DemandMatrix, weights []float64, gamma float64) (*Result, error) {
	if len(weights) != g.NumEdges() {
		return nil, fmt.Errorf("routing: %d weights for %d edges", len(weights), g.NumEdges())
	}
	strat, err := NewStrategy(g, weights, gamma)
	if err != nil {
		return nil, err
	}
	return EvaluateStrategy(strat, dm)
}

// EvaluateStrategy evaluates a (possibly cached) strategy on one demand
// matrix: per-sink demand propagated through the splitting ratios, loads
// accumulated in sink order.
//
//gddr:hotpath
func EvaluateStrategy(strat *Strategy, dm *traffic.DemandMatrix) (*Result, error) {
	g := strat.g
	n := g.NumNodes()
	if dm.N != n {
		//gddr:allow hotpath size-mismatch error path
		return nil, fmt.Errorf("routing: demand matrix size %d != graph nodes %d", dm.N, n)
	}
	// The three setup buffers and the Result below are this function's
	// contract: the caller owns Loads/Utilization, so they cannot come from
	// a pool. The per-sink loop between them is what must stay clean — the
	// Router's per-request path (Router.evaluate) reuses pooled scratch and
	// pays none of these.
	//gddr:allow hotpath caller-owned result setup, one allocation set per evaluation
	insums := make([]float64, n)
	dm.InSums(insums)
	//gddr:allow hotpath caller-owned result buffer (Result.Loads)
	loads := make([]float64, g.NumEdges())
	//gddr:allow hotpath per-evaluation scratch; Router.evaluate passes pooled scratch instead
	inflow := make([]float64, n)
	for sink := 0; sink < n; sink++ {
		if insums[sink] == 0 {
			continue
		}
		ratios, err := strat.Ratios(sink)
		if err != nil {
			//gddr:allow hotpath error path
			return nil, fmt.Errorf("routing: sink %d: %w", sink, err)
		}
		if err := ratios.AccumulateLoads(g, dm, loads, inflow); err != nil {
			//gddr:allow hotpath error path
			return nil, fmt.Errorf("routing: sink %d: %w", sink, err)
		}
	}
	//gddr:allow hotpath caller-owned result buffer (Result.Utilization)
	util := make([]float64, g.NumEdges())
	uMax := 0.0
	for ei := range util {
		util[ei] = loads[ei] / g.Edge(ei).Capacity
		if util[ei] > uMax {
			uMax = util[ei]
		}
	}
	//gddr:allow hotpath the Result envelope is the caller's, one per evaluation
	return &Result{MaxUtilization: uMax, Loads: loads, Utilization: util}, nil
}

// ShortestPath evaluates classic single-shortest-path routing (hop count,
// deterministic smallest-id tie break), the baseline drawn as a dotted line
// in the paper's Figures 6 and 8.
func ShortestPath(g *graph.Graph, dm *traffic.DemandMatrix) (*Result, error) {
	if dm.N != g.NumNodes() {
		return nil, fmt.Errorf("routing: demand matrix size %d != graph nodes %d", dm.N, g.NumNodes())
	}
	weights := g.UnitWeights()
	loads := make([]float64, g.NumEdges())
	const eps = 1e-9
	for sink := 0; sink < g.NumNodes(); sink++ {
		if dm.InSum(sink) == 0 {
			continue
		}
		dist, err := g.DistancesTo(sink, weights)
		if err != nil {
			return nil, err
		}
		// next[v] is the single next-hop edge from v towards the sink.
		next := make([]int, g.NumNodes())
		for v := range next {
			next[v] = -1
		}
		for v := 0; v < g.NumNodes(); v++ {
			if v == sink || math.IsInf(dist[v], 1) {
				continue
			}
			bestEdge := -1
			bestTo := -1
			for _, ei := range g.OutEdges(v) {
				to := g.Edge(ei).To
				if math.Abs(weights[ei]+dist[to]-dist[v]) <= eps {
					if bestEdge == -1 || to < bestTo {
						bestEdge = ei
						bestTo = to
					}
				}
			}
			if bestEdge == -1 {
				return nil, fmt.Errorf("routing: no shortest-path next hop at node %d towards %d", v, sink)
			}
			next[v] = bestEdge
		}
		// Propagate in decreasing-distance order.
		order := make([]int, g.NumNodes())
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool { return dist[order[i]] > dist[order[j]] })
		inflow := make([]float64, g.NumNodes())
		for s := 0; s < g.NumNodes(); s++ {
			d := dm.At(s, sink)
			if d > 0 && math.IsInf(dist[s], 1) {
				return nil, fmt.Errorf("routing: node %d cannot reach sink %d but has demand", s, sink)
			}
			inflow[s] = d
		}
		for _, v := range order {
			if v == sink || inflow[v] == 0 || next[v] < 0 {
				continue
			}
			loads[next[v]] += inflow[v]
			inflow[g.Edge(next[v]).To] += inflow[v]
			inflow[v] = 0
		}
	}
	util := make([]float64, g.NumEdges())
	uMax := 0.0
	for ei := range util {
		util[ei] = loads[ei] / g.Edge(ei).Capacity
		if util[ei] > uMax {
			uMax = util[ei]
		}
	}
	return &Result{MaxUtilization: uMax, Loads: loads, Utilization: util}, nil
}

// InverseCapacityECMP evaluates softmin routing with oblivious inverse-
// capacity weights and a sharp gamma, approximating OSPF-with-recommended-
// weights ECMP: an additional traffic-oblivious baseline.
func InverseCapacityECMP(g *graph.Graph, dm *traffic.DemandMatrix) (*Result, error) {
	return EvaluateWeights(g, dm, g.InverseCapacityWeights(), 10*DefaultGamma)
}
