package routing

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"gddr/internal/topo"
	"gddr/internal/traffic"
)

func abileneFixture(t *testing.T, seed int64) (*Strategy, *traffic.DemandMatrix, []float64) {
	t.Helper()
	g := topo.Abilene()
	rng := rand.New(rand.NewSource(seed))
	dm := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	w := make([]float64, g.NumEdges())
	for i := range w {
		w[i] = 0.5 + rng.Float64()*2
	}
	strat, err := NewStrategy(g, w, DefaultGamma)
	if err != nil {
		t.Fatal(err)
	}
	return strat, dm, w
}

// TestStrategyMatchesOneShot: every per-sink ratio served from a Strategy
// must be identical to a one-shot SplittingRatios call, and EvaluateStrategy
// must reproduce EvaluateWeights bit for bit.
func TestStrategyMatchesOneShot(t *testing.T) {
	strat, dm, w := abileneFixture(t, 31)
	g := topo.Abilene()
	for sink := 0; sink < g.NumNodes(); sink++ {
		want, err := SplittingRatios(g, sink, w, DefaultGamma)
		if err != nil {
			t.Fatal(err)
		}
		got, err := strat.Ratios(sink)
		if err != nil {
			t.Fatal(err)
		}
		for ei := range want.Ratio {
			if got.Ratio[ei] != want.Ratio[ei] {
				t.Fatalf("sink %d edge %d: strategy ratio %g != one-shot %g", sink, ei, got.Ratio[ei], want.Ratio[ei])
			}
		}
		// Second fetch returns the cached object.
		again, err := strat.Ratios(sink)
		if err != nil {
			t.Fatal(err)
		}
		if again != got {
			t.Fatalf("sink %d rebuilt on second fetch", sink)
		}
	}
	res, err := EvaluateStrategy(strat, dm)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EvaluateWeights(strat.g, dm, w, DefaultGamma)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxUtilization != want.MaxUtilization {
		t.Fatalf("strategy MLU %g != one-shot %g", res.MaxUtilization, want.MaxUtilization)
	}
	for ei := range want.Loads {
		if res.Loads[ei] != want.Loads[ei] {
			t.Fatalf("edge %d load %g != %g", ei, res.Loads[ei], want.Loads[ei])
		}
	}
}

func TestStrategyMatchesKey(t *testing.T) {
	strat, _, w := abileneFixture(t, 32)
	if !strat.Matches(w, DefaultGamma) {
		t.Fatal("strategy does not match its own key")
	}
	if strat.Matches(w, DefaultGamma*2) {
		t.Fatal("strategy matched a different gamma")
	}
	w2 := append([]float64(nil), w...)
	w2[3] += 1e-12
	if strat.Matches(w2, DefaultGamma) {
		t.Fatal("strategy matched perturbed weights (comparison must be bitwise)")
	}
	if strat.Matches(w2[:len(w2)-1], DefaultGamma) {
		t.Fatal("strategy matched a shorter weight vector")
	}
}

func TestStrategyValidation(t *testing.T) {
	g := topo.Abilene()
	w := g.UnitWeights()
	if _, err := NewStrategy(g, w, 0); err == nil {
		t.Fatal("non-positive gamma accepted")
	}
	if _, err := NewStrategy(g, w[:3], DefaultGamma); err == nil {
		t.Fatal("short weight vector accepted")
	}
	bad := append([]float64(nil), w...)
	bad[0] = math.NaN()
	if _, err := NewStrategy(g, bad, DefaultGamma); err == nil {
		t.Fatal("NaN weight accepted")
	}
}

// TestStrategyConcurrentRatios hammers the lazy per-sink build from many
// goroutines (run under -race): all callers must observe consistent,
// correct ratios regardless of who built them.
func TestStrategyConcurrentRatios(t *testing.T) {
	strat, _, w := abileneFixture(t, 33)
	g := topo.Abilene()
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sink := 0; sink < g.NumNodes(); sink++ {
				if _, err := strat.Ratios(sink); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for sink := 0; sink < g.NumNodes(); sink++ {
		want, err := SplittingRatios(g, sink, w, DefaultGamma)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := strat.Ratios(sink)
		for ei := range want.Ratio {
			if got.Ratio[ei] != want.Ratio[ei] {
				t.Fatalf("sink %d edge %d ratio diverged after concurrent build", sink, ei)
			}
		}
	}
}

// TestLoadsAccumulationContract pins the documented Loads contract: loads
// is accumulated into, not reset, so a buffer reused across evaluations
// must be zeroed in between — and once it is, scratch-buffer reuse
// (AccumulateLoads with a caller-owned inflow) is bit-identical to fresh
// allocations.
func TestLoadsAccumulationContract(t *testing.T) {
	strat, dm, _ := abileneFixture(t, 34)
	g := topo.Abilene()
	rt, err := strat.Ratios(dm.N - 1)
	if err != nil {
		t.Fatal(err)
	}

	fresh := make([]float64, g.NumEdges())
	if err := rt.Loads(g, dm, fresh); err != nil {
		t.Fatal(err)
	}

	// Reuse without zeroing: every touched edge double-counts.
	reused := make([]float64, g.NumEdges())
	inflow := make([]float64, g.NumNodes())
	for pass := 0; pass < 2; pass++ {
		if err := rt.AccumulateLoads(g, dm, reused, inflow); err != nil {
			t.Fatal(err)
		}
	}
	for ei, want := range fresh {
		if reused[ei] != 2*want {
			t.Fatalf("edge %d after two accumulations: %g, want exactly %g (contract: Loads adds)", ei, reused[ei], 2*want)
		}
	}

	// Reuse with zeroing between evaluations: bit-identical to fresh.
	for i := range reused {
		reused[i] = 0
	}
	if err := rt.AccumulateLoads(g, dm, reused, inflow); err != nil {
		t.Fatal(err)
	}
	for ei, want := range fresh {
		if reused[ei] != want {
			t.Fatalf("edge %d after zeroed reuse: %g != %g", ei, reused[ei], want)
		}
	}
}
