package routing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gddr/internal/graph"
	"gddr/internal/lp"
	"gddr/internal/topo"
	"gddr/internal/traffic"
)

func TestSoftminIsDistribution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 10
		}
		p := Softmin(vals, 0.5+rng.Float64()*5)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftminFavoursSmall(t *testing.T) {
	p := Softmin([]float64{1, 2, 3}, 2)
	if !(p[0] > p[1] && p[1] > p[2]) {
		t.Fatalf("softmin not decreasing: %v", p)
	}
}

func TestSoftminGammaSharpens(t *testing.T) {
	soft := Softmin([]float64{1, 2}, 0.5)
	sharp := Softmin([]float64{1, 2}, 10)
	if sharp[0] <= soft[0] {
		t.Fatalf("higher gamma must concentrate on the minimum: %v vs %v", sharp, soft)
	}
	if sharp[0] < 0.9999 {
		t.Fatalf("gamma=10 on gap 1 should be near-deterministic, got %v", sharp)
	}
}

func TestSoftminExtremeValuesStable(t *testing.T) {
	p := Softmin([]float64{1000, 1001}, 5)
	if math.IsNaN(p[0]) || p[0] <= p[1] {
		t.Fatalf("softmin unstable for large inputs: %v", p)
	}
}

func TestSoftminEmpty(t *testing.T) {
	if got := Softmin(nil, 2); len(got) != 0 {
		t.Fatalf("softmin(nil) = %v", got)
	}
}

func TestDestinationDAGIsAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.RandomConnected(5+rng.Intn(10), 3, 1, 10, rng)
		if err != nil {
			return false
		}
		w := make([]float64, g.NumEdges())
		for i := range w {
			w[i] = 0.1 + rng.Float64()*3
		}
		sink := rng.Intn(g.NumNodes())
		keep, _, err := DestinationDAG(g, sink, w)
		if err != nil {
			return false
		}
		_, err = g.TopologicalOrder(keep)
		return err == nil // acyclic iff a topological order exists
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDestinationDAGKeepsShortestPaths(t *testing.T) {
	g := topo.Abilene()
	w := g.UnitWeights()
	for sink := 0; sink < g.NumNodes(); sink++ {
		keep, dist, err := DestinationDAG(g, sink, w)
		if err != nil {
			t.Fatal(err)
		}
		// Every non-sink node must retain an edge on a shortest path.
		for v := 0; v < g.NumNodes(); v++ {
			if v == sink {
				continue
			}
			found := false
			for _, ei := range g.OutEdges(v) {
				e := g.Edge(ei)
				if keep[ei] && math.Abs(w[ei]+dist[e.To]-dist[v]) < 1e-9 {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("sink %d: node %d lost all shortest-path edges", sink, v)
			}
		}
	}
}

func TestSplittingRatiosSumToOne(t *testing.T) {
	// Paper §IV-A constraint 1: Σ_u R_v(u) = 1 for every v ≠ t that can
	// carry traffic, and constraint 2: the sink forwards nothing.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.RandomConnected(5+rng.Intn(8), 3, 1, 10, rng)
		if err != nil {
			return false
		}
		w := make([]float64, g.NumEdges())
		for i := range w {
			w[i] = 0.2 + rng.Float64()*2
		}
		sink := rng.Intn(g.NumNodes())
		r, err := SplittingRatios(g, sink, w, 1+rng.Float64()*4)
		if err != nil {
			return false
		}
		for v := 0; v < g.NumNodes(); v++ {
			var sum float64
			for _, ei := range g.OutEdges(v) {
				sum += r.Ratio[ei]
			}
			if v == sink {
				if sum != 0 {
					return false
				}
			} else if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadsConserveDemand(t *testing.T) {
	// Total load on edges into the sink must equal total demand to the sink
	// (everything is absorbed, nothing lost — §IV-A).
	rng := rand.New(rand.NewSource(77))
	g := topo.Abilene()
	dm := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	w := make([]float64, g.NumEdges())
	for i := range w {
		w[i] = 0.5 + rng.Float64()
	}
	for sink := 0; sink < g.NumNodes(); sink++ {
		r, err := SplittingRatios(g, sink, w, 2)
		if err != nil {
			t.Fatal(err)
		}
		loads := make([]float64, g.NumEdges())
		if err := r.Loads(g, dm, loads); err != nil {
			t.Fatal(err)
		}
		var arrived float64
		for _, ei := range g.InEdges(sink) {
			arrived += loads[ei]
		}
		var wanted float64
		for s := 0; s < g.NumNodes(); s++ {
			wanted += dm.At(s, sink)
		}
		if math.Abs(arrived-wanted) > 1e-6*(1+wanted) {
			t.Fatalf("sink %d: arrived %g want %g", sink, arrived, wanted)
		}
	}
}

func TestEvaluateWeightsNeverBeatsLP(t *testing.T) {
	// Softmin routing is a restricted strategy: its U_max must be >= the LP
	// optimum for any weights (key reward invariant: ratio >= 1).
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 6; trial++ {
		g, err := graph.RandomConnected(5+rng.Intn(5), 3, 50, 150, rng)
		if err != nil {
			t.Fatal(err)
		}
		dm := traffic.Bimodal(g.NumNodes(), traffic.BimodalParams{
			LowMean: 10, LowStd: 2, HighMean: 30, HighStd: 4, ElephantProb: 0.2,
		}, rng)
		w := make([]float64, g.NumEdges())
		for i := range w {
			w[i] = 0.2 + rng.Float64()*3
		}
		res, err := EvaluateWeights(g, dm, w, 1+rng.Float64()*3)
		if err != nil {
			t.Fatal(err)
		}
		opt, _, err := lp.OptimalMaxUtilization(g, dm)
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxUtilization < opt-1e-6 {
			t.Fatalf("trial %d: softmin %g beats LP optimum %g", trial, res.MaxUtilization, opt)
		}
	}
}

func TestEvaluateWeightsSingleLinkExact(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 0, 10)
	dm := traffic.NewDemandMatrix(2)
	dm.Set(0, 1, 5)
	res, err := EvaluateWeights(g, dm, []float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MaxUtilization-0.5) > 1e-9 {
		t.Fatalf("U=%g want 0.5", res.MaxUtilization)
	}
	if res.Loads[0] != 5 || res.Loads[1] != 0 {
		t.Fatalf("loads=%v", res.Loads)
	}
}

func TestEvaluateWeightsSplitsOnSymmetricPaths(t *testing.T) {
	// Diamond with equal weights: softmin must split 50/50 at the source.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 3, 10)
	g.MustAddEdge(0, 2, 10)
	g.MustAddEdge(2, 3, 10)
	dm := traffic.NewDemandMatrix(4)
	dm.Set(0, 3, 8)
	res, err := EvaluateWeights(g, dm, []float64{1, 1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Loads[0]-4) > 1e-9 || math.Abs(res.Loads[2]-4) > 1e-9 {
		t.Fatalf("loads=%v want 4/4 split", res.Loads)
	}
	if math.Abs(res.MaxUtilization-0.4) > 1e-9 {
		t.Fatalf("U=%g want 0.4", res.MaxUtilization)
	}
}

func TestWeightsSteerTraffic(t *testing.T) {
	// Raising one path's weight must shift load to the other.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 3, 10)
	g.MustAddEdge(0, 2, 10)
	g.MustAddEdge(2, 3, 10)
	dm := traffic.NewDemandMatrix(4)
	dm.Set(0, 3, 8)
	res, err := EvaluateWeights(g, dm, []float64{5, 5, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loads[2] <= res.Loads[0] {
		t.Fatalf("expected cheap path to carry more: %v", res.Loads)
	}
}

func TestShortestPathBaseline(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 2, 10)
	g.MustAddEdge(0, 2, 10) // direct link
	dm := traffic.NewDemandMatrix(3)
	dm.Set(0, 2, 6)
	res, err := ShortestPath(g, dm)
	if err != nil {
		t.Fatal(err)
	}
	// Direct 1-hop path must carry everything.
	if res.Loads[2] != 6 || res.Loads[0] != 0 {
		t.Fatalf("loads=%v want direct path", res.Loads)
	}
}

func TestShortestPathConservesDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := topo.NSFNet()
	dm := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	res, err := ShortestPath(g, dm)
	if err != nil {
		t.Fatal(err)
	}
	for sink := 0; sink < g.NumNodes(); sink++ {
		var arrived float64
		for _, ei := range g.InEdges(sink) {
			arrived += res.Loads[ei]
		}
		_ = arrived
	}
	var totalIn float64
	for _, e := range g.Edges() {
		_ = e
	}
	// The max utilisation must be at least the LP optimum.
	opt, _, err := lp.OptimalMaxUtilization(g, dm)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxUtilization < opt-1e-6 {
		t.Fatalf("shortest path %g beats LP %g", res.MaxUtilization, opt)
	}
	_ = totalIn
}

func TestInverseCapacityECMP(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := topo.Abilene()
	dm := traffic.Bimodal(g.NumNodes(), traffic.DefaultBimodal(), rng)
	res, err := InverseCapacityECMP(g, dm)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxUtilization <= 0 {
		t.Fatalf("U=%g", res.MaxUtilization)
	}
}

func TestEvaluateWeightsValidation(t *testing.T) {
	g := topo.Abilene()
	dm := traffic.NewDemandMatrix(3)
	if _, err := EvaluateWeights(g, dm, g.UnitWeights(), 2); err == nil {
		t.Fatal("size mismatch accepted")
	}
	dm2 := traffic.NewDemandMatrix(g.NumNodes())
	if _, err := EvaluateWeights(g, dm2, []float64{1}, 2); err == nil {
		t.Fatal("weight count mismatch accepted")
	}
	if _, err := SplittingRatios(g, 0, g.UnitWeights(), -1); err == nil {
		t.Fatal("negative gamma accepted")
	}
}

func TestLargeGammaBeatsSinglePathOnUniformRing(t *testing.T) {
	// On a uniform-capacity ring, sharp softmin with unit weights is ECMP:
	// equal-length alternatives split 50/50, which can only spread load
	// relative to the single shortest-path baseline.
	rng := rand.New(rand.NewSource(31))
	g, err := graph.Ring(6, 100)
	if err != nil {
		t.Fatal(err)
	}
	dm := traffic.Bimodal(g.NumNodes(), traffic.BimodalParams{
		LowMean: 10, LowStd: 2, HighMean: 20, HighStd: 3, ElephantProb: 0.2,
	}, rng)
	soft, err := EvaluateWeights(g, dm, g.UnitWeights(), 50)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := ShortestPath(g, dm)
	if err != nil {
		t.Fatal(err)
	}
	if soft.MaxUtilization > sp.MaxUtilization+1e-9 {
		t.Fatalf("ECMP-like softmin %g worse than single shortest path %g on uniform ring",
			soft.MaxUtilization, sp.MaxUtilization)
	}
}
