package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"gddr/internal/ad"
	"gddr/internal/mat"
)

func TestDenseShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("d", 4, 3, ReLU, rng)
	if d.InDim() != 4 || d.OutDim() != 3 {
		t.Fatalf("dims %d %d", d.InDim(), d.OutDim())
	}
	tape := ad.NewTape()
	x := tape.Constant(mat.RandNormal(5, 4, 1, rng))
	y := d.Apply(tape, x)
	if y.Value.Rows != 5 || y.Value.Cols != 3 {
		t.Fatalf("output %dx%d", y.Value.Rows, y.Value.Cols)
	}
	for _, v := range y.Value.Data {
		if v < 0 {
			t.Fatal("relu output negative")
		}
	}
}

func TestMLPConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := NewMLP("m", []int{6, 8, 8, 2}, ReLU, Linear, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Layers) != 3 || m.InDim() != 6 || m.OutDim() != 2 {
		t.Fatalf("mlp structure wrong: %d layers", len(m.Layers))
	}
	if _, err := NewMLP("bad", []int{4}, ReLU, Linear, rng); err == nil {
		t.Fatal("single-size MLP accepted")
	}
	if got := CountParams(m.Params()); got != 6*8+8+8*8+8+8*2+2 {
		t.Fatalf("param count %d", got)
	}
}

// TestMLPLearnsXOR is an end-to-end learning test: Adam + MLP must fit the
// XOR function, which requires the hidden layer and working gradients.
func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewMLP("xor", []int{2, 8, 1}, Tanh, Linear, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y := mat.FromRows([][]float64{{0}, {1}, {1}, {0}})
	opt := NewAdam(m.Params(), 0.02)
	var loss float64
	for epoch := 0; epoch < 600; epoch++ {
		tape := ad.NewTape()
		pred := m.Apply(tape, tape.Constant(x))
		diff := tape.Sub(pred, tape.Constant(y))
		l := tape.Mean(tape.Square(diff))
		if err := tape.Backward(l); err != nil {
			t.Fatal(err)
		}
		opt.Step()
		loss = l.Value.Data[0]
	}
	if loss > 0.01 {
		t.Fatalf("XOR not learned, final MSE %g", loss)
	}
}

func TestSGDMomentumDecreasesQuadratic(t *testing.T) {
	p := ad.NewParam("x", mat.FromSlice(1, 1, []float64{5}))
	opt := NewSGD([]*ad.Param{p}, 0.1, 0.9)
	for i := 0; i < 300; i++ {
		tape := ad.NewTape()
		l := tape.Square(tape.Use(p))
		if err := tape.Backward(l); err != nil {
			t.Fatal(err)
		}
		opt.Step()
	}
	if math.Abs(p.Value.Data[0]) > 0.01 {
		t.Fatalf("SGD did not converge: x=%g", p.Value.Data[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := ad.NewParam("x", mat.FromSlice(1, 2, []float64{3, -4}))
	opt := NewAdam([]*ad.Param{p}, 0.1)
	for i := 0; i < 300; i++ {
		tape := ad.NewTape()
		l := tape.SumAll(tape.Square(tape.Use(p)))
		if err := tape.Backward(l); err != nil {
			t.Fatal(err)
		}
		opt.Step()
	}
	if math.Abs(p.Value.Data[0]) > 0.01 || math.Abs(p.Value.Data[1]) > 0.01 {
		t.Fatalf("Adam did not converge: %v", p.Value.Data)
	}
}

func TestGradClip(t *testing.T) {
	p := ad.NewParam("p", mat.New(1, 3))
	copy(p.Grad.Data, []float64{3, 4, 0}) // norm 5
	ClipGradNorm([]*ad.Param{p}, 1)
	if math.Abs(GlobalGradNorm([]*ad.Param{p})-1) > 1e-9 {
		t.Fatalf("clipped norm %g", GlobalGradNorm([]*ad.Param{p}))
	}
	// Below the cap: untouched.
	copy(p.Grad.Data, []float64{0.1, 0, 0})
	ClipGradNorm([]*ad.Param{p}, 1)
	if p.Grad.Data[0] != 0.1 {
		t.Fatal("small gradient modified")
	}
}

func TestCheckFinite(t *testing.T) {
	p := ad.NewParam("p", mat.FromSlice(1, 1, []float64{1}))
	if err := CheckFinite([]*ad.Param{p}); err != nil {
		t.Fatal(err)
	}
	p.Value.Data[0] = math.NaN()
	if err := CheckFinite([]*ad.Param{p}); err == nil {
		t.Fatal("NaN not detected")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m1, err := NewMLP("m", []int{3, 4, 2}, ReLU, Linear, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveParams(&buf, m1.Params()); err != nil {
		t.Fatal(err)
	}
	m2, err := NewMLP("m", []int{3, 4, 2}, ReLU, Linear, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(bytes.NewReader(buf.Bytes()), m2.Params()); err != nil {
		t.Fatal(err)
	}
	x := mat.RandNormal(2, 3, 1, rng)
	t1, t2 := ad.NewTape(), ad.NewTape()
	y1 := m1.Apply(t1, t1.Constant(x))
	y2 := m2.Apply(t2, t2.Constant(x))
	for i := range y1.Value.Data {
		if y1.Value.Data[i] != y2.Value.Data[i] {
			t.Fatal("loaded model differs from saved model")
		}
	}
}

func TestLoadRejectsMismatches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m1, _ := NewMLP("m", []int{3, 4, 2}, ReLU, Linear, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, m1.Params()); err != nil {
		t.Fatal(err)
	}
	different, _ := NewMLP("m", []int{3, 5, 2}, ReLU, Linear, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), different.Params()); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	renamed, _ := NewMLP("other", []int{3, 4, 2}, ReLU, Linear, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), renamed.Params()); err == nil {
		t.Fatal("name mismatch accepted")
	}
}

func TestActivationString(t *testing.T) {
	if ReLU.String() != "relu" || Linear.String() != "linear" {
		t.Fatal("activation names wrong")
	}
}
