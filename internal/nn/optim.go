package nn

import (
	"fmt"
	"math"

	"gddr/internal/ad"
	"gddr/internal/mat"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update using the current gradients and clears them.
	Step()
	// SetLearningRate changes the step size (e.g. for schedules).
	SetLearningRate(lr float64)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	params   []*ad.Param
	lr       float64
	momentum float64
	velocity []*mat.Matrix
}

var _ Optimizer = (*SGD)(nil)

// NewSGD creates an SGD optimiser over params.
func NewSGD(params []*ad.Param, lr, momentum float64) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum}
	if momentum != 0 {
		s.velocity = make([]*mat.Matrix, len(params))
		for i, p := range params {
			s.velocity[i] = mat.New(p.Value.Rows, p.Value.Cols)
		}
	}
	return s
}

// Step applies one SGD update and zeroes gradients.
func (s *SGD) Step() {
	for i, p := range s.params {
		if s.momentum != 0 {
			v := s.velocity[i]
			for j := range p.Value.Data {
				v.Data[j] = s.momentum*v.Data[j] - s.lr*p.Grad.Data[j]
				p.Value.Data[j] += v.Data[j]
			}
		} else {
			for j := range p.Value.Data {
				p.Value.Data[j] -= s.lr * p.Grad.Data[j]
			}
		}
		p.ZeroGrad()
	}
}

// SetLearningRate updates the step size.
func (s *SGD) SetLearningRate(lr float64) { s.lr = lr }

// Adam implements the Adam optimiser (Kingma & Ba, 2015) with bias
// correction, the optimiser used by stable-baselines PPO2.
type Adam struct {
	params []*ad.Param
	lr     float64
	beta1  float64
	beta2  float64
	eps    float64
	step   int
	m, v   []*mat.Matrix
}

var _ Optimizer = (*Adam)(nil)

// NewAdam creates an Adam optimiser with standard hyperparameters
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(params []*ad.Param, lr float64) *Adam {
	a := &Adam{params: params, lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
	a.m = make([]*mat.Matrix, len(params))
	a.v = make([]*mat.Matrix, len(params))
	for i, p := range params {
		a.m[i] = mat.New(p.Value.Rows, p.Value.Cols)
		a.v[i] = mat.New(p.Value.Rows, p.Value.Cols)
	}
	return a
}

// Step applies one Adam update and zeroes gradients.
func (a *Adam) Step() {
	a.step++
	bc1 := 1 - math.Pow(a.beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.beta2, float64(a.step))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j := range p.Value.Data {
			g := p.Grad.Data[j]
			m.Data[j] = a.beta1*m.Data[j] + (1-a.beta1)*g
			v.Data[j] = a.beta2*v.Data[j] + (1-a.beta2)*g*g
			mhat := m.Data[j] / bc1
			vhat := v.Data[j] / bc2
			p.Value.Data[j] -= a.lr * mhat / (math.Sqrt(vhat) + a.eps)
		}
		p.ZeroGrad()
	}
}

// SetLearningRate updates the step size.
func (a *Adam) SetLearningRate(lr float64) { a.lr = lr }

// AdamState is the serialisable optimiser state: the bias-correction step
// counter and the first/second moment estimates per parameter, in parameter
// order. Restoring it alongside the parameter values resumes training
// bit-identically.
type AdamState struct {
	Step int         `json:"step"`
	M    [][]float64 `json:"m"`
	V    [][]float64 `json:"v"`
}

// State captures the optimiser state for checkpointing.
func (a *Adam) State() AdamState {
	st := AdamState{Step: a.step, M: make([][]float64, len(a.m)), V: make([][]float64, len(a.v))}
	for i := range a.m {
		st.M[i] = append([]float64(nil), a.m[i].Data...)
		st.V[i] = append([]float64(nil), a.v[i].Data...)
	}
	return st
}

// Restore rewinds the optimiser to a state captured with State. The moment
// shapes must match the optimiser's parameters.
func (a *Adam) Restore(st AdamState) error {
	if st.Step < 0 {
		return fmt.Errorf("nn: adam state has negative step %d", st.Step)
	}
	if len(st.M) != len(a.m) || len(st.V) != len(a.v) {
		return fmt.Errorf("nn: adam state has %d/%d moments, optimiser has %d params", len(st.M), len(st.V), len(a.m))
	}
	for i := range a.m {
		if len(st.M[i]) != len(a.m[i].Data) || len(st.V[i]) != len(a.v[i].Data) {
			return fmt.Errorf("nn: adam state moment %d has %d/%d values, param has %d",
				i, len(st.M[i]), len(st.V[i]), len(a.m[i].Data))
		}
	}
	a.step = st.Step
	for i := range a.m {
		copy(a.m[i].Data, st.M[i])
		copy(a.v[i].Data, st.V[i])
	}
	return nil
}

// CheckFinite returns an error if any parameter holds a NaN or Inf, naming
// the first offender; useful as a training invariant.
func CheckFinite(params []*ad.Param) error {
	for _, p := range params {
		for _, x := range p.Value.Data {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("nn: parameter %q contains non-finite value %g", p.Name, x)
			}
		}
	}
	return nil
}
