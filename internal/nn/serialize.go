package nn

import (
	"encoding/json"
	"fmt"
	"io"

	"gddr/internal/ad"
	"gddr/internal/mat"
)

// ParamState is the wire form of one parameter tensor, used both by the
// model snapshots of SaveParams/LoadParams and by training checkpoints.
type ParamState struct {
	Name string    `json:"name"`
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// snapshotJSON is the wire form of a parameter set.
type snapshotJSON struct {
	Format int          `json:"format"`
	Params []ParamState `json:"params"`
}

// CaptureParams copies the parameter tensors into their wire form.
func CaptureParams(params []*ad.Param) []ParamState {
	out := make([]ParamState, len(params))
	for i, p := range params {
		out[i] = ParamState{
			Name: p.Name,
			Rows: p.Value.Rows,
			Cols: p.Value.Cols,
			Data: append([]float64(nil), p.Value.Data...),
		}
	}
	return out
}

// RestoreParams loads captured states back into params, matching by
// position and validating names and shapes, so a snapshot cannot be
// restored into a mismatched architecture.
func RestoreParams(states []ParamState, params []*ad.Param) error {
	if len(states) != len(params) {
		return fmt.Errorf("nn: snapshot has %d params, model has %d", len(states), len(params))
	}
	for i, pj := range states {
		p := params[i]
		if pj.Name != p.Name {
			return fmt.Errorf("nn: param %d name mismatch: snapshot %q, model %q", i, pj.Name, p.Name)
		}
		if pj.Rows != p.Value.Rows || pj.Cols != p.Value.Cols {
			return fmt.Errorf("nn: param %q shape mismatch: snapshot %dx%d, model %dx%d",
				p.Name, pj.Rows, pj.Cols, p.Value.Rows, p.Value.Cols)
		}
		if len(pj.Data) != pj.Rows*pj.Cols {
			return fmt.Errorf("nn: param %q data length %d != %dx%d", p.Name, len(pj.Data), pj.Rows, pj.Cols)
		}
	}
	for i, pj := range states {
		p := params[i]
		p.Value = mat.FromSlice(pj.Rows, pj.Cols, append([]float64(nil), pj.Data...))
		p.Grad = mat.New(pj.Rows, pj.Cols)
	}
	return nil
}

// SaveParams writes params as JSON to w.
func SaveParams(w io.Writer, params []*ad.Param) error {
	enc := json.NewEncoder(w)
	return enc.Encode(snapshotJSON{Format: 1, Params: CaptureParams(params)})
}

// LoadParams reads a JSON snapshot from r into params, matching by position
// and validating names and shapes.
func LoadParams(r io.Reader, params []*ad.Param) error {
	var snap snapshotJSON
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decode snapshot: %w", err)
	}
	if snap.Format != 1 {
		return fmt.Errorf("nn: unsupported snapshot format %d", snap.Format)
	}
	return RestoreParams(snap.Params, params)
}
