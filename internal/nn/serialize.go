package nn

import (
	"encoding/json"
	"fmt"
	"io"

	"gddr/internal/ad"
	"gddr/internal/mat"
)

// paramJSON is the wire form of one parameter tensor.
type paramJSON struct {
	Name string    `json:"name"`
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

// snapshotJSON is the wire form of a parameter set.
type snapshotJSON struct {
	Format int         `json:"format"`
	Params []paramJSON `json:"params"`
}

// SaveParams writes params as JSON to w.
func SaveParams(w io.Writer, params []*ad.Param) error {
	snap := snapshotJSON{Format: 1, Params: make([]paramJSON, len(params))}
	for i, p := range params {
		snap.Params[i] = paramJSON{
			Name: p.Name,
			Rows: p.Value.Rows,
			Cols: p.Value.Cols,
			Data: p.Value.Data,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// LoadParams reads a JSON snapshot from r into params, matching by position
// and validating names and shapes.
func LoadParams(r io.Reader, params []*ad.Param) error {
	var snap snapshotJSON
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decode snapshot: %w", err)
	}
	if snap.Format != 1 {
		return fmt.Errorf("nn: unsupported snapshot format %d", snap.Format)
	}
	if len(snap.Params) != len(params) {
		return fmt.Errorf("nn: snapshot has %d params, model has %d", len(snap.Params), len(params))
	}
	for i, pj := range snap.Params {
		p := params[i]
		if pj.Name != p.Name {
			return fmt.Errorf("nn: param %d name mismatch: snapshot %q, model %q", i, pj.Name, p.Name)
		}
		if pj.Rows != p.Value.Rows || pj.Cols != p.Value.Cols {
			return fmt.Errorf("nn: param %q shape mismatch: snapshot %dx%d, model %dx%d",
				p.Name, pj.Rows, pj.Cols, p.Value.Rows, p.Value.Cols)
		}
		if len(pj.Data) != pj.Rows*pj.Cols {
			return fmt.Errorf("nn: param %q data length %d != %dx%d", p.Name, len(pj.Data), pj.Rows, pj.Cols)
		}
		p.Value = mat.FromSlice(pj.Rows, pj.Cols, append([]float64(nil), pj.Data...))
		p.Grad = mat.New(pj.Rows, pj.Cols)
	}
	return nil
}
