// Package nn provides neural-network building blocks on top of the autodiff
// engine: dense layers, multilayer perceptrons, Xavier/He initialisation,
// SGD and Adam optimisers, and JSON model serialisation. It is a
// from-scratch substitute for the TensorFlow/Keras layers used by the paper.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"gddr/internal/ad"
	"gddr/internal/mat"
)

// Activation selects the nonlinearity applied after a dense layer.
type Activation int

// Supported activations. Linear means no nonlinearity.
const (
	Linear Activation = iota + 1
	ReLU
	Tanh
	Sigmoid
)

func (a Activation) String() string {
	switch a {
	case Linear:
		return "linear"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case Sigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("activation(%d)", int(a))
	}
}

func (a Activation) apply(t *ad.Tape, x *ad.Node) *ad.Node {
	switch a {
	case ReLU:
		return t.ReLU(x)
	case Tanh:
		return t.Tanh(x)
	case Sigmoid:
		return t.Sigmoid(x)
	default:
		return x
	}
}

// Dense is a fully connected layer computing act(x·W + b).
type Dense struct {
	W, B *ad.Param
	Act  Activation
}

// NewDense creates a dense layer with Xavier/Glorot-uniform weights.
func NewDense(name string, in, out int, act Activation, rng *rand.Rand) *Dense {
	limit := math.Sqrt(6.0 / float64(in+out))
	if act == ReLU {
		limit = math.Sqrt(2.0) * math.Sqrt(6.0/float64(in+out)) // He-style boost
	}
	return &Dense{
		W:   ad.NewParam(name+".W", mat.RandUniform(in, out, -limit, limit, rng)),
		B:   ad.NewParam(name+".b", mat.New(1, out)),
		Act: act,
	}
}

// Apply runs the layer on a batch (rows = samples).
func (d *Dense) Apply(t *ad.Tape, x *ad.Node) *ad.Node {
	y := t.AddRowBroadcast(t.MatMul(x, t.Use(d.W)), t.Use(d.B))
	return d.Act.apply(t, y)
}

// Params returns the layer's trainable parameters.
func (d *Dense) Params() []*ad.Param { return []*ad.Param{d.W, d.B} }

// InDim returns the layer input width.
func (d *Dense) InDim() int { return d.W.Value.Rows }

// OutDim returns the layer output width.
func (d *Dense) OutDim() int { return d.W.Value.Cols }

// MLP is a stack of dense layers with a shared hidden activation and a
// configurable output activation.
type MLP struct {
	Layers []*Dense
}

// NewMLP builds an MLP with the given layer sizes (len >= 2: input, hidden…,
// output). Hidden layers use hiddenAct; the final layer uses outAct.
func NewMLP(name string, sizes []int, hiddenAct, outAct Activation, rng *rand.Rand) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("nn: MLP needs >= 2 sizes, got %v", sizes)
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		act := hiddenAct
		if i == len(sizes)-2 {
			act = outAct
		}
		m.Layers = append(m.Layers,
			NewDense(fmt.Sprintf("%s.%d", name, i), sizes[i], sizes[i+1], act, rng))
	}
	return m, nil
}

// Apply runs the MLP on a batch.
func (m *MLP) Apply(t *ad.Tape, x *ad.Node) *ad.Node {
	for _, l := range m.Layers {
		x = l.Apply(t, x)
	}
	return x
}

// Params returns all trainable parameters.
func (m *MLP) Params() []*ad.Param {
	var ps []*ad.Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// InDim returns the expected input width.
func (m *MLP) InDim() int { return m.Layers[0].InDim() }

// OutDim returns the output width.
func (m *MLP) OutDim() int { return m.Layers[len(m.Layers)-1].OutDim() }

// CountParams returns the total scalar parameter count of params.
func CountParams(params []*ad.Param) int {
	n := 0
	for _, p := range params {
		n += len(p.Value.Data)
	}
	return n
}

// GlobalGradNorm returns the L2 norm of all parameter gradients.
func GlobalGradNorm(params []*ad.Param) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	return math.Sqrt(sq)
}

// ClipGradNorm scales gradients so their global L2 norm is at most maxNorm.
func ClipGradNorm(params []*ad.Param, maxNorm float64) {
	norm := GlobalGradNorm(params)
	if norm <= maxNorm || norm == 0 {
		return
	}
	scale := maxNorm / norm
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] *= scale
		}
	}
}
